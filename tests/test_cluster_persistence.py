"""Durability layer of repro.cluster: WAL, snapshots, recovery, shm.

Everything here is in-process (no subprocesses): the event log's
torn-write contract, snapshot round-trips, the recovery fold's
exactness against a never-persisted control store, the DurableIngest
ack-is-commit ordering, shared-memory weight adoption, and the
consistent-hash ring's determinism and balance.
"""

import logging
import threading

import numpy as np
import pytest

from repro.cluster import (
    DurableIngest,
    EventLogWriter,
    HashRing,
    SharedWeights,
    SnapshotError,
    WalCorruptionError,
    assign_shared_parameters,
    list_segments,
    list_snapshots,
    load_snapshot,
    prune_snapshots,
    read_log,
    recover_store,
    save_snapshot,
)
from repro.core import TSPNRA, TSPNRAConfig
from repro.data import build_dataset
from repro.data.trajectory import PredictionSample
from repro.serve.predictor import Predictor
from repro.stream.events import CheckinEvent
from repro.stream.state import StoreConfig, UserStateStore
from repro.utils import spawn

CFG = dict(dim=16, fusion_layers=1, hgat_layers=1, top_k=4, num_heads=2)

STORE_CFG = StoreConfig(
    num_shards=4, max_sessions=8, max_session_visits=16, gap_hours=24.0
)


@pytest.fixture(scope="module")
def tiny_dataset():
    return build_dataset("nyc", seed=0, scale=0.12, imagery_resolution=16)


def ev(user, poi, t):
    return CheckinEvent(user_id=user, poi_id=poi, timestamp=float(t))


def drifting_events(count=60, users=5):
    """A deterministic event tape with occasional session-gap jumps."""
    events, t = [], 0.0
    for i in range(count):
        t += 0.5 if i % 3 else 30.0  # every third step crosses the gap
        events.append(ev(i % users, (i * 3) % 11, t))
    return events


# ----------------------------------------------------------------------
# event log
# ----------------------------------------------------------------------
class TestEventLog:
    def test_append_read_round_trip(self, tmp_path):
        events = drifting_events(24)
        with EventLogWriter(tmp_path, segment_max_records=5) as log:
            seqs = [log.append(e) for e in events]
        assert seqs == list(range(1, 25))
        result = read_log(tmp_path)
        assert [e for _, e in result.records] == events
        assert [s for s, _ in result.records] == seqs
        assert result.last_seq == 24
        assert result.torn_skipped == 0
        assert len(list_segments(tmp_path)) == 5  # 24 records, 5 per segment

    def test_min_seq_filters_replayed_prefix(self, tmp_path):
        events = drifting_events(10)
        with EventLogWriter(tmp_path) as log:
            for e in events:
                log.append(e)
        result = read_log(tmp_path, min_seq=7)
        assert [s for s, _ in result.records] == [8, 9, 10]

    def test_next_seq_spans_restarts(self, tmp_path):
        with EventLogWriter(tmp_path) as log:
            for e in drifting_events(5):
                log.append(e)
        # a restarted writer resumes the dense numbering in a NEW segment
        with EventLogWriter(tmp_path, next_seq=6) as log:
            log.append(ev(9, 1, 1e6))
        result = read_log(tmp_path)
        assert [s for s, _ in result.records] == [1, 2, 3, 4, 5, 6]
        assert len(list_segments(tmp_path)) == 2

    def test_fsync_policy_validated(self, tmp_path):
        with pytest.raises(ValueError, match="fsync policy"):
            EventLogWriter(tmp_path, fsync="sometimes")

    def test_fsync_always_syncs_every_append(self, tmp_path):
        log = EventLogWriter(tmp_path, fsync="always")
        for e in drifting_events(4):
            log.append(e)
        assert log.fsyncs == 4
        log.close()
        assert log.fsyncs == 5  # close rotates, which also syncs

    def test_fsync_never_never_syncs(self, tmp_path):
        with EventLogWriter(tmp_path, fsync="never") as log:
            for e in drifting_events(4):
                log.append(e)
        assert log.fsyncs == 0

    def test_torn_final_record_skipped_with_warning(self, tmp_path, caplog):
        with EventLogWriter(tmp_path) as log:
            for e in drifting_events(3):
                log.append(e)
        segment = list_segments(tmp_path)[-1]
        with open(segment, "ab") as fh:
            fh.write(b'{"seq": 4, "user_id": 1, "poi')  # crashed mid-write
        with caplog.at_level(logging.WARNING, logger="repro.cluster.wal"):
            result = read_log(tmp_path)
        assert result.torn_skipped == 1
        assert result.last_seq == 3  # the torn record was never acknowledged
        assert any("torn" in record.message for record in caplog.records)

    def test_torn_final_line_with_newline_also_skipped(self, tmp_path):
        with EventLogWriter(tmp_path) as log:
            for e in drifting_events(3):
                log.append(e)
        segment = list_segments(tmp_path)[-1]
        with open(segment, "ab") as fh:
            fh.write(b'{"seq": 4, "user_id"\n')  # terminator made it, body didn't
        result = read_log(tmp_path)
        assert result.torn_skipped == 1 and result.last_seq == 3

    def test_mid_file_corruption_raises(self, tmp_path):
        with EventLogWriter(tmp_path) as log:
            for e in drifting_events(6):
                log.append(e)
        segment = list_segments(tmp_path)[0]
        raw = segment.read_bytes()
        segment.write_bytes(raw[:3] + b"XXXX" + raw[7:])
        with pytest.raises(WalCorruptionError, match="malformed record"):
            read_log(tmp_path)

    def test_unterminated_non_final_segment_raises(self, tmp_path):
        with EventLogWriter(tmp_path, segment_max_records=3) as log:
            for e in drifting_events(6):
                log.append(e)
        first, _ = list_segments(tmp_path)
        with open(first, "ab") as fh:
            fh.write(b'{"seq": 99')  # a torn tail buried mid-log = corruption
        with pytest.raises(WalCorruptionError, match="unterminated"):
            read_log(tmp_path)

    def test_non_monotonic_seq_raises(self, tmp_path):
        with EventLogWriter(tmp_path) as log:
            log.append(ev(1, 1, 1.0))
            log.append(ev(1, 2, 2.0))
        segment = list_segments(tmp_path)[0]
        lines = segment.read_bytes().splitlines(keepends=True)
        segment.write_bytes(lines[1] + lines[0])  # swap the two records
        with pytest.raises(WalCorruptionError, match="non-monotonic"):
            read_log(tmp_path)

    def test_prune_spares_open_segment_and_uncovered_records(self, tmp_path):
        log = EventLogWriter(tmp_path, segment_max_records=3)
        for e in drifting_events(10):
            log.append(e)
        assert len(list_segments(tmp_path)) == 4  # 3+3+3 closed + 1 open
        removed = log.prune(upto_seq=7)
        # segments [1-3] and [4-6] are covered; [7-9] reaches seq 9 > 7
        assert len(removed) == 2
        result = read_log(tmp_path, min_seq=7)
        assert [s for s, _ in result.records] == [8, 9, 10]
        log.close()

    def test_rotate_drops_empty_segment(self, tmp_path):
        log = EventLogWriter(tmp_path)
        log.append(ev(1, 1, 1.0))
        log.rotate()
        log.rotate()  # nothing written since: no file should appear
        log.close()
        assert len(list_segments(tmp_path)) == 1

    def test_concurrent_appends_stay_dense_and_replayable(self, tmp_path):
        """ThreadingHTTPServer shape: many threads share one writer."""
        log = EventLogWriter(tmp_path, segment_max_records=16)
        per_thread = 50

        def appender(user):
            for i in range(per_thread):
                log.append(ev(user, i % 11, float(i)))

        threads = [
            threading.Thread(target=appender, args=(user,)) for user in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        log.close()
        # interleaved writes would produce duplicate/non-monotonic seqs
        # or torn lines that read_log rejects as corruption
        result = read_log(tmp_path)
        assert [s for s, _ in result.records] == list(range(1, 4 * per_thread + 1))
        assert result.torn_skipped == 0


# ----------------------------------------------------------------------
# snapshots
# ----------------------------------------------------------------------
def filled_store(events=None):
    store = UserStateStore(STORE_CFG)
    for event in events or drifting_events(57):
        store.append(event)
    return store


class TestSnapshots:
    def test_round_trip_exact(self, tmp_path):
        store = filled_store()
        path = save_snapshot(store, tmp_path, last_seq=57)
        assert path.name == "snapshot-000000000057.npz"
        loaded = load_snapshot(path)
        assert loaded.last_seq == 57
        assert len(loaded.store) == len(store)
        for user in store.users():
            a, b = loaded.store.snapshot(user), store.snapshot(user)
            assert a.state_version == b.state_version
            assert a.history_version == b.history_version
            assert [t.visits for t in a.history] == [t.visits for t in b.history]
            assert a.prefix == b.prefix
            assert a.last_timestamp == b.last_timestamp
        assert loaded.store.stats() == store.stats()

    def test_round_trip_preserves_append_behaviour(self, tmp_path):
        """The restored store keeps folding identically to the original."""
        events = drifting_events(57)
        store = filled_store(events[:40])
        loaded = load_snapshot(save_snapshot(store, tmp_path, 40))
        for event in events[40:]:
            assert loaded.store.append(event) == store.append(event)

    def test_config_knob_mismatch_raises(self, tmp_path):
        path = save_snapshot(filled_store(), tmp_path, 57)
        mismatched = StoreConfig(
            num_shards=4, max_sessions=8, max_session_visits=16, gap_hours=72.0
        )
        with pytest.raises(SnapshotError, match="gap_hours"):
            load_snapshot(path, config=mismatched)

    def test_lock_striping_may_differ(self, tmp_path):
        # num_shards is concurrency layout, not semantics
        path = save_snapshot(filled_store(), tmp_path, 57)
        relaid = load_snapshot(
            path,
            config=StoreConfig(
                num_shards=1, max_sessions=8, max_session_visits=16, gap_hours=24.0
            ),
        )
        assert len(relaid.store) == 5

    def test_empty_store_round_trips(self, tmp_path):
        loaded = load_snapshot(save_snapshot(UserStateStore(STORE_CFG), tmp_path, 0))
        assert len(loaded.store) == 0 and loaded.last_seq == 0

    def test_prune_keeps_newest_two(self, tmp_path):
        store = filled_store()
        for seq in (10, 20, 30):
            save_snapshot(store, tmp_path, seq)
        (tmp_path / "snapshot-000000000040.npz.tmp").write_bytes(b"torn")
        prune_snapshots(tmp_path, keep=2)
        assert [p.name for p in list_snapshots(tmp_path)] == [
            "snapshot-000000000020.npz",
            "snapshot-000000000030.npz",
        ]
        assert not list(tmp_path.glob("*.tmp"))


# ----------------------------------------------------------------------
# recovery + DurableIngest
# ----------------------------------------------------------------------
class TestRecovery:
    def test_recovered_store_matches_never_crashed_control(self, tmp_path):
        events = drifting_events(57)
        control = filled_store(events)
        log = EventLogWriter(tmp_path, segment_max_records=7)
        durable = DurableIngest(
            store=UserStateStore(STORE_CFG), log=log, snapshot_interval=10
        )
        for event in events:
            durable.ingest(event)
            durable.maybe_snapshot()
        log.close()

        recovered = recover_store(tmp_path, config=STORE_CFG)
        assert recovered.last_seq == 57
        assert recovered.snapshot_seq > 0  # a snapshot actually participated
        assert recovered.replayed == 57 - recovered.snapshot_seq
        for user in control.users():
            a = recovered.store.snapshot(user)
            b = control.snapshot(user)
            assert a.state_version == b.state_version
            assert [t.visits for t in a.history] == [t.visits for t in b.history]
            assert a.prefix == b.prefix
        assert recovered.store.stats() == control.stats()

    def test_recovery_without_snapshot_is_pure_fold(self, tmp_path):
        with EventLogWriter(tmp_path) as log:
            durable = DurableIngest(
                store=UserStateStore(STORE_CFG), log=log, snapshot_interval=10**9
            )
            for event in drifting_events(20):
                durable.ingest(event)
        recovered = recover_store(tmp_path, config=STORE_CFG)
        assert recovered.snapshot_seq == 0 and recovered.replayed == 20

    def test_recovery_skips_torn_tail(self, tmp_path):
        with EventLogWriter(tmp_path) as log:
            durable = DurableIngest(
                store=UserStateStore(STORE_CFG), log=log, snapshot_interval=10**9
            )
            for event in drifting_events(10):
                durable.ingest(event)
        segment = list_segments(tmp_path)[-1]
        with open(segment, "ab") as fh:
            fh.write(b'{"seq": 11, "user')
        recovered = recover_store(tmp_path, config=STORE_CFG)
        assert recovered.torn_skipped == 1 and recovered.last_seq == 10

    def test_rejected_event_never_reaches_the_log(self, tmp_path):
        log = EventLogWriter(tmp_path)
        durable = DurableIngest(store=UserStateStore(STORE_CFG), log=log)
        durable.ingest(ev(1, 1, 10.0))
        with pytest.raises(ValueError):
            durable.ingest(ev(1, 2, 5.0))  # out of order: rejected, not logged
        durable.ingest(ev(1, 3, 11.0))
        log.close()
        result = read_log(tmp_path)
        assert [e.poi_id for _, e in result.records] == [1, 3]
        # recovery replays exactly the acknowledged set -> no replay error
        recovered = recover_store(tmp_path, config=STORE_CFG)
        assert recovered.store.state_version(1) == 2

    def test_maybe_snapshot_interval_and_pruning(self, tmp_path):
        log = EventLogWriter(tmp_path, segment_max_records=4)
        durable = DurableIngest(
            store=UserStateStore(STORE_CFG), log=log, snapshot_interval=10
        )
        taken = []
        for event in drifting_events(25):
            durable.ingest(event)
            taken.append(durable.maybe_snapshot() is not None)
        assert sum(taken) == 2  # at events 10 and 20
        assert durable.snapshots_taken == 2
        # segments fully covered by the latest snapshot were pruned
        assert all(
            int(p.name[4:16]) > 16 for p in list_segments(tmp_path)
        )  # seq 20 snapshot covers segments [1-4]..[17-20]; [17-20] is open-adjacent
        stats = durable.stats()["durability"]
        assert stats["last_seq"] == 25
        assert stats["snapshots_taken"] == 2
        assert stats["since_snapshot"] == 5
        # the WAL health gauges behind /metrics
        assert stats["segments"] == len(list_segments(tmp_path))
        assert stats["bytes_appended"] > 0
        assert 0 < stats["bytes_since_snapshot"] < stats["bytes_appended"]
        assert 0.0 <= stats["snapshot_age_seconds"] < 60.0
        log.close()

    def test_wal_gauges_exposed_through_registry(self, tmp_path):
        """The durability gauges scrape straight from the registry."""
        from repro.obs import parse_prometheus, render_prometheus

        log = EventLogWriter(tmp_path, fsync="never", segment_max_records=4)
        durable = DurableIngest(
            store=UserStateStore(STORE_CFG), log=log, snapshot_interval=10
        )
        for event in drifting_events(12):
            durable.ingest(event)
            durable.maybe_snapshot()
        parsed = parse_prometheus(render_prometheus(durable.registry.snapshot()))
        assert parsed[("wal_last_seq", ())] == 12.0
        assert parsed[("wal_snapshots_taken", ())] == 1.0
        assert parsed[("wal_segments", ())] == float(len(list_segments(tmp_path)))
        assert parsed[("wal_appended", ())] == 12.0
        assert parsed[("wal_bytes_since_snapshot", ())] > 0.0
        assert 0.0 <= parsed[("wal_snapshot_age_seconds", ())] < 60.0
        # the fsync policy travels as a label, not a magic number
        assert parsed[("wal_info", (("fsync", "never"),))] == 1.0
        # before any snapshot the age gauge reads -1 (sentinel, not 0)
        fresh_dir = tmp_path / "fresh"
        fresh = DurableIngest(
            store=UserStateStore(STORE_CFG), log=EventLogWriter(fresh_dir)
        )
        fresh_parsed = parse_prometheus(
            render_prometheus(fresh.registry.snapshot())
        )
        assert fresh_parsed[("wal_snapshot_age_seconds", ())] == -1.0
        fresh.log.close()
        log.close()

    def test_threaded_ingest_recovers_exactly(self, tmp_path):
        """Concurrent ingest threads (one user each) must leave a log
        whose replay reproduces every acknowledged state_version."""
        log = EventLogWriter(tmp_path, segment_max_records=32)
        durable = DurableIngest(
            store=UserStateStore(STORE_CFG), log=log, snapshot_interval=25
        )
        per_user = 40

        def ingester(user):
            t = 0.0
            for i in range(per_user):
                t += 0.5 if i % 3 else 30.0
                durable.ingest(ev(user, (i * 3) % 11, t))
                durable.maybe_snapshot()  # any thread may roll it now

        threads = [
            threading.Thread(target=ingester, args=(user,)) for user in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        log.close()

        recovered = recover_store(tmp_path, config=STORE_CFG)
        assert recovered.last_seq == 4 * per_user
        for user in durable.store.users():
            assert recovered.store.state_version(user) == (
                durable.store.state_version(user)
            )

    @pytest.mark.parametrize(
        "leftover",
        [b"", b'{"seq": 6, "user'],
        ids=["empty", "torn-first-record"],
    )
    def test_recovery_clears_dead_trailing_segment(self, tmp_path, leftover):
        """A crash can leave wal-<last_seq+1> holding no valid record;
        recovery must remove it or the next writer's exclusive create
        collides and the shard crash-loops under the supervisor."""
        with EventLogWriter(tmp_path) as log:
            for event in drifting_events(5):
                log.append(event)
        (tmp_path / "wal-000000000006.log").write_bytes(leftover)

        recovered = recover_store(tmp_path, config=STORE_CFG)
        assert recovered.last_seq == 5
        # the seed recovery hands the writer must not collide on disk
        with EventLogWriter(tmp_path, next_seq=recovered.last_seq + 1) as log:
            log.append(ev(9, 1, 1e6))
        result = read_log(tmp_path)
        assert [s for s, _ in result.records] == [1, 2, 3, 4, 5, 6]

    def test_force_snapshot(self, tmp_path):
        with EventLogWriter(tmp_path) as log:
            durable = DurableIngest(store=UserStateStore(STORE_CFG), log=log)
            durable.ingest(ev(1, 1, 1.0))
            assert durable.maybe_snapshot() is None  # interval not reached
            path = durable.maybe_snapshot(force=True)
            assert path is not None and path.exists()


# ----------------------------------------------------------------------
# shared-memory weights
# ----------------------------------------------------------------------
class TestSharedWeights:
    def test_arrays_round_trip_and_are_read_only(self):
        source = {
            "a": np.arange(12, dtype=np.float64).reshape(3, 4),
            "b": np.array([1, 2, 3], dtype=np.int64),
        }
        shared = SharedWeights.create(source)
        try:
            views = shared.arrays()
            for name, array in source.items():
                assert np.array_equal(views[name], array)
                assert not views[name].flags.writeable
                with pytest.raises(ValueError):
                    views[name][...] = 0
        finally:
            shared.unlink()

    def test_attach_sees_creator_data(self):
        source = {"w": np.linspace(0, 1, 7)}
        owner = SharedWeights.create(source)
        try:
            attached = SharedWeights.attach(owner.manifest)
            assert np.array_equal(attached.arrays()["w"], source["w"])
            assert not attached.owner
            attached.close()
        finally:
            owner.unlink()

    def test_assign_rejects_name_mismatch(self, tiny_dataset):
        model = TSPNRA.from_dataset(
            tiny_dataset, TSPNRAConfig(**CFG), rng=spawn(0)
        )
        shared = SharedWeights.create({"bogus": np.zeros(3)})
        try:
            with pytest.raises(KeyError, match="mismatch"):
                assign_shared_parameters(model, shared.arrays())
        finally:
            shared.unlink()

    def test_adopted_model_predicts_identically(self, tiny_dataset):
        weights_owner = TSPNRA.from_dataset(
            tiny_dataset, TSPNRAConfig(**CFG), rng=spawn(0)
        )
        adopter = TSPNRA.from_dataset(
            tiny_dataset, TSPNRAConfig(**CFG), rng=spawn(1)  # different init
        )
        shared = SharedWeights.create(weights_owner.state_dict())
        try:
            assign_shared_parameters(adopter, shared.arrays())
            user, trajs = next(
                (u, t) for u, t in tiny_dataset.trajectories.items() if len(t) >= 2
            )
            sample = PredictionSample(
                user_id=user,
                history=trajs[:-1],
                prefix=list(trajs[-1].visits[:-1]),
                target=trajs[-1].visits[-1],
                history_key=("test", user, 0),
            )
            a = Predictor(weights_owner).predict(sample)
            b = Predictor(adopter).predict(sample)
            assert a.ranked_pois == b.ranked_pois
            assert a.poi_rank == b.poi_rank
        finally:
            shared.unlink()


# ----------------------------------------------------------------------
# consistent-hash ring
# ----------------------------------------------------------------------
class TestHashRing:
    def test_deterministic_across_instances(self):
        first = HashRing(range(4))
        second = HashRing(range(4))
        assert all(
            first.shard_for(user) == second.shard_for(user) for user in range(500)
        )

    def test_pinned_routing(self):
        # md5-based placement is process-independent: these values must
        # never drift, or a router restart would strand durable state
        ring = HashRing(range(4))
        assert [ring.shard_for(user) for user in range(8)] == [
            ring.shard_for(user) for user in range(8)
        ]
        assert ring.shard_for(0) == HashRing(range(4)).shard_for(0)

    def test_reasonable_balance(self):
        ring = HashRing(range(4))
        counts = ring.distribution(range(2000))
        assert min(counts.values()) > 0.6 * (2000 / 4)
        assert max(counts.values()) < 1.5 * (2000 / 4)

    def test_incremental_reshard(self):
        users = range(2000)
        before = HashRing(range(4))
        after = HashRing(range(5))
        moved = sum(
            1 for u in users if before.shard_for(u) != after.shard_for(u)
        )
        # consistent hashing moves ~1/5 of users; a modulo ring moves ~4/5
        assert moved < 0.35 * 2000

    def test_validation(self):
        with pytest.raises(ValueError):
            HashRing([])
        with pytest.raises(ValueError):
            HashRing([0, 0])
        with pytest.raises(ValueError):
            HashRing([0], vnodes=0)
