"""Plain SGD with momentum (used by ablation / sanity comparisons)."""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from ..nn.module import Parameter


class SGD:
    def __init__(self, params: Iterable[Parameter], lr: float = 0.01, momentum: float = 0.0):
        self.params: List[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def zero_grad(self) -> None:
        for p in self.params:
            p.grad = None

    def step(self) -> None:
        for i, p in enumerate(self.params):
            if p.grad is None:
                continue
            if self.momentum:
                self._velocity[i] = self.momentum * self._velocity[i] + p.grad
                update = self._velocity[i]
            else:
                update = p.grad
            p.data = p.data - self.lr * update
            p.version += 1
