"""Finite-difference gradient checking for the autograd engine.

Every op and layer in the repository is validated against central
finite differences; the test suite treats a failed check as a bug in
the engine, never as tolerable noise.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .tensor import Tensor


def numerical_gradient(
    fn: Callable[..., Tensor], inputs: Sequence[Tensor], wrt: int, eps: float = 1e-6
) -> np.ndarray:
    """Central finite-difference gradient of ``sum(fn(*inputs))`` w.r.t. one input."""
    target = inputs[wrt]
    grad = np.zeros_like(target.data)
    flat = target.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = float(fn(*inputs).data.sum())
        flat[i] = original - eps
        minus = float(fn(*inputs).data.sum())
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2.0 * eps)
    return grad


def gradcheck(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    atol: float = 1e-5,
    rtol: float = 1e-4,
    eps: float = 1e-6,
) -> bool:
    """Compare autograd gradients with finite differences for all inputs.

    Raises ``AssertionError`` with a readable message on mismatch;
    returns ``True`` otherwise so it can sit inside ``assert``.
    """
    for t in inputs:
        t.grad = None
    out = fn(*inputs)
    out.backward(np.ones_like(out.data))
    for i, t in enumerate(inputs):
        if not t.requires_grad:
            continue
        analytic = t.grad if t.grad is not None else np.zeros_like(t.data)
        numeric = numerical_gradient(fn, inputs, i, eps=eps)
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            worst = np.max(np.abs(analytic - numeric))
            raise AssertionError(
                f"gradcheck failed for input {i}: max abs err {worst:.3e}\n"
                f"analytic:\n{analytic}\nnumeric:\n{numeric}"
            )
    return True
