"""Tests for the ``repro.serve`` subsystem: the unified predictor
protocol, checkpoint round-trips, the serving facade and its caches."""

import numpy as np
import pytest

from repro.baselines import BASELINE_NAMES, BaselineResult, make_baseline
from repro.core import TSPNRA, TSPNRAConfig
from repro.core.model import PredictionResult
from repro.data import build_dataset, make_samples, split_samples
from repro.eval import collect_ranks, evaluate
from repro.serve import (
    Predictor,
    PredictorProtocol,
    PredictorResult,
    compare_throughput,
    load_checkpoint,
    save_checkpoint,
)
from repro.train import TrainConfig, Trainer
from repro.utils import LRUCache, spawn

CFG = dict(dim=16, fusion_layers=1, hgat_layers=1, top_k=4, num_heads=2)


@pytest.fixture(scope="module")
def tiny():
    dataset = build_dataset("nyc", seed=0, scale=0.12, imagery_resolution=16)
    samples = make_samples(dataset, last_only=False)
    splits = split_samples(samples, seed=0)
    locations = np.array(
        [dataset.spec.bbox.normalize(x, y) for x, y in dataset.city.pois.xy]
    )
    return dataset, splits, locations


@pytest.fixture(scope="module")
def trained_tspnra(tiny):
    """A briefly-trained TSPN-RA (non-trivial weights for round-trips)."""
    dataset, splits, _ = tiny
    model = TSPNRA.from_dataset(dataset, TSPNRAConfig(**CFG), rng=spawn(0))
    Trainer(
        model, TrainConfig(epochs=2, batch_size=8, lr=5e-3, max_train_samples=32, seed=0)
    ).fit(splits.train)
    return model


class TestUnifiedResult:
    def test_legacy_names_are_one_type(self):
        assert PredictionResult is PredictorResult
        assert BaselineResult is PredictorResult

    def test_tile_rank_requires_tiles(self):
        result = PredictorResult(ranked_pois=[3, 1, 2], target_poi=1)
        assert result.poi_rank == 2
        with pytest.raises(ValueError):
            result.tile_rank

    def test_top_k(self):
        result = PredictorResult(ranked_pois=[5, 4, 3, 2], target_poi=3)
        assert result.top_k(2) == [5, 4]


class TestProtocolConformance:
    @pytest.mark.parametrize("name", BASELINE_NAMES)
    def test_baselines_conform(self, tiny, name):
        dataset, splits, locations = tiny
        model = make_baseline(name, len(dataset.city.pois), locations, dim=16, rng=spawn(1))
        if name == "MC":
            model.fit(splits.train)
        model.eval()
        assert isinstance(model, PredictorProtocol)
        sample = splits.test[0]
        shared = model.compute_embeddings()
        assert shared == ()
        result = model.predict(sample, *shared)
        assert isinstance(result, PredictorResult)
        assert result.ranked_tiles is None
        assert model.top_k(sample, 5) == result.ranked_pois[:5]
        assert model.target_rank(sample) == result.poi_rank
        scores = model.score_candidates(sample, result.ranked_pois[:10])
        assert scores.shape == (10,)

    def test_tspnra_conforms(self, tiny):
        dataset, splits, _ = tiny
        model = TSPNRA.from_dataset(dataset, TSPNRAConfig(**CFG), rng=spawn(2))
        model.eval()
        assert isinstance(model, PredictorProtocol)
        sample = splits.test[0]
        result = model.predict(sample)
        assert result.ranked_tiles is not None and result.tile_rank >= 1
        # cosine scores are descending along the model's own ranking
        scores = model.score_candidates(sample, result.ranked_pois[:8])
        assert np.all(np.diff(scores) <= 1e-9)

    def test_predict_without_target(self, tiny):
        from repro.data.trajectory import PredictionSample

        dataset, splits, _ = tiny
        model = TSPNRA.from_dataset(dataset, TSPNRAConfig(**CFG), rng=spawn(3))
        model.eval()
        base = splits.test[0]
        live = PredictionSample(
            user_id=base.user_id,
            history=base.history,
            prefix=base.prefix,
            target=None,
            history_key=base.history_key,
        )
        result = model.predict(live)
        assert result.target_poi == -1
        assert result.ranked_pois == model.predict(base).ranked_pois


class TestCheckpoint:
    def test_tspnra_roundtrip_bit_identical(self, tiny, trained_tspnra, tmp_path):
        dataset, splits, _ = tiny
        test = splits.test[:20]
        before = evaluate(trained_tspnra, test)
        path = save_checkpoint(trained_tspnra, tmp_path / "tspnra.npz", dataset=dataset)
        loaded = load_checkpoint(path, dataset=dataset)
        assert loaded.model is not trained_tspnra
        assert evaluate(loaded.model, test) == before
        # ranks, not just aggregates, must match
        assert collect_ranks(loaded.model, test) == collect_ranks(trained_tspnra, test)

    def test_roundtrip_rebuilds_dataset_from_recipe(self, tiny, trained_tspnra, tmp_path):
        dataset, splits, _ = tiny
        path = save_checkpoint(trained_tspnra, tmp_path / "tspnra.npz", dataset=dataset)
        loaded = load_checkpoint(path)  # no dataset passed: rebuild
        assert loaded.dataset is not dataset
        assert loaded.meta["dataset"]["scale"] == 0.12
        test = splits.test[:10]
        assert collect_ranks(loaded.model, test) == collect_ranks(trained_tspnra, test)

    def test_markov_roundtrip(self, tiny, tmp_path):
        dataset, splits, locations = tiny
        mc = make_baseline("MC", len(dataset.city.pois), locations)
        mc.fit(splits.train)
        test = splits.test[:20]
        before = evaluate(mc, test)
        path = save_checkpoint(mc, tmp_path / "mc.npz", dataset=dataset)
        loaded = load_checkpoint(path, dataset=dataset)
        assert evaluate(loaded.model, test) == before

    def test_graph_flashback_extra_state_roundtrip(self, tiny, tmp_path):
        dataset, splits, locations = tiny
        model = make_baseline(
            "Graph-Flashback", len(dataset.city.pois), locations, dim=16, rng=spawn(4)
        )
        model.fit_transition_graph(splits.train)
        test = splits.test[:10]
        before = collect_ranks(model, test)
        path = save_checkpoint(model, tmp_path / "gfb.npz", dataset=dataset)
        loaded = load_checkpoint(path, dataset=dataset)
        np.testing.assert_array_equal(loaded.model._adjacency, model._adjacency)
        assert collect_ranks(loaded.model, test) == before

    def test_without_recipe_requires_dataset(self, tiny, trained_tspnra, tmp_path):
        _, _, _ = tiny
        path = save_checkpoint(trained_tspnra, tmp_path / "bare.npz")  # no dataset
        with pytest.raises(ValueError, match="dataset"):
            load_checkpoint(path)

    def test_poi_count_mismatch_rejected(self, tiny, tmp_path):
        dataset, splits, locations = tiny
        mc = make_baseline("MC", len(dataset.city.pois), locations)
        mc.fit(splits.train)
        path = save_checkpoint(mc, tmp_path / "mc.npz", dataset=dataset)
        other = build_dataset("nyc", seed=1, scale=0.14, imagery_resolution=16)
        with pytest.raises(ValueError, match="POIs"):
            load_checkpoint(path, dataset=other)


class TestPredictor:
    def test_predict_batch_matches_per_sample_and_reuses_embeddings(
        self, tiny, trained_tspnra
    ):
        _, splits, _ = tiny
        model = trained_tspnra
        model.eval()  # the legacy loop below predicts on the bare model
        test = splits.test[:15]
        calls = {"n": 0}
        original = type(model).compute_embeddings

        def counting(self):
            calls["n"] += 1
            return original(self)

        model.compute_embeddings = counting.__get__(model)
        try:
            predictor = Predictor(model)
            batch_ranks = [r.poi_rank for r in predictor.predict_batch(test)]
            assert calls["n"] == 1  # shared tables computed exactly once
            predictor.predict_batch(test)
            assert calls["n"] == 1  # second batch is a cache hit
            assert predictor.stats.embedding_cache_hits == 1
            # the legacy per-sample loop recomputes shared state per call
            legacy_ranks = [model.predict(s).poi_rank for s in test]
            assert calls["n"] == 1 + len(test)
        finally:
            del model.compute_embeddings
        assert batch_ranks == legacy_ranks

    def test_weight_update_invalidates_cache(self, tiny, trained_tspnra):
        _, splits, _ = tiny
        model = trained_tspnra
        predictor = Predictor(model)
        predictor.predict(splits.test[0])
        assert predictor.stats.embedding_refreshes == 1
        model.load_state_dict(model.state_dict())  # bumps weights_version
        predictor.predict(splits.test[0])
        assert predictor.stats.embedding_refreshes == 2

    def test_optimizer_step_bumps_weights_version(self, tiny):
        dataset, splits, locations = tiny
        model = make_baseline("GRU", len(dataset.city.pois), locations, dim=16, rng=spawn(5))
        v0 = model.weights_version()
        Trainer(
            model, TrainConfig(epochs=1, batch_size=8, max_train_samples=8, seed=0)
        ).fit(splits.train)
        assert model.weights_version() > v0

    def test_graph_cache_is_lru_bounded(self, tiny, trained_tspnra):
        _, splits, _ = tiny
        model = trained_tspnra
        predictor = Predictor(model, graph_cache_size=2)
        assert predictor.graph_cache is model._graph_cache
        users = {}
        for sample in splits.test:
            users.setdefault(sample.history_key, sample)
        distinct = list(users.values())[:5]
        assert len(distinct) >= 3, "fixture needs several distinct trajectories"
        predictor.predict_batch(distinct)
        assert len(model._graph_cache) <= 2

    def test_recommend_returns_k_valid_pois(self, tiny, trained_tspnra):
        dataset, splits, _ = tiny
        predictor = Predictor(trained_tspnra)
        sample = next(s for s in splits.test if s.history)
        recs = predictor.recommend(
            sample.prefix, history=sample.history, user_id=sample.user_id, k=5
        )
        assert len(recs) == 5
        assert all(0 <= p < len(dataset.city.pois) for p in recs)

    def test_stats_accumulate(self, tiny, trained_tspnra):
        _, splits, _ = tiny
        predictor = Predictor(trained_tspnra)
        predictor.predict_batch(splits.test[:4])
        predictor.predict(splits.test[0])
        stats = predictor.stats
        assert stats.requests == 5
        assert stats.batches == 2
        assert stats.total_seconds > 0
        assert stats.throughput > 0
        assert stats.mean_latency_ms > 0
        assert stats.as_dict()["requests"] == 5

    def test_from_checkpoint(self, tiny, trained_tspnra, tmp_path):
        dataset, splits, _ = tiny
        trained_tspnra.eval()
        path = save_checkpoint(trained_tspnra, tmp_path / "m.npz", dataset=dataset)
        predictor = Predictor.from_checkpoint(path, dataset=dataset)
        assert predictor.dataset is dataset
        ranks = [r.poi_rank for r in predictor.predict_batch(splits.test[:5])]
        assert ranks == [trained_tspnra.predict(s).poi_rank for s in splits.test[:5]]

    def test_restores_prior_mode_and_migrates_warm_graphs(self, tiny):
        dataset, splits, _ = tiny
        model = TSPNRA.from_dataset(dataset, TSPNRAConfig(**CFG), rng=spawn(6))
        sample = next(s for s in splits.test if s.history)
        model.eval()
        model.predict(sample)  # warms the model's own graph cache
        warm = len(model._graph_cache)
        assert warm == 1
        model.train()
        predictor = Predictor(model, graph_cache_size=8)
        assert len(model._graph_cache) == warm  # warm entries migrated
        predictor.predict(sample)
        assert model.training is True  # prior mode restored after serving

    def test_unregistered_model_rejected_at_save_time(self, tiny, tmp_path):
        from repro.baselines.base import NextPOIBaseline

        dataset, _, _ = tiny
        rogue = NextPOIBaseline(len(dataset.city.pois), dim=16)
        with pytest.raises(ValueError, match="BASELINE_NAMES"):
            save_checkpoint(rogue, tmp_path / "rogue.npz", dataset=dataset)

    def test_compare_throughput_reports(self, tiny, trained_tspnra):
        _, splits, _ = tiny
        report = compare_throughput(trained_tspnra, splits.test[:6])
        assert report["samples"] == 6
        assert report["cached_sps"] > 0 and report["uncached_sps"] > 0


class TestEvaluatorModeRestore:
    def test_restores_training_mode(self, tiny, trained_tspnra):
        _, splits, _ = tiny
        trained_tspnra.train()
        collect_ranks(trained_tspnra, splits.test[:3])
        assert trained_tspnra.training is True

    def test_restores_eval_mode(self, tiny, trained_tspnra):
        _, splits, _ = tiny
        trained_tspnra.eval()
        collect_ranks(trained_tspnra, splits.test[:3])
        assert trained_tspnra.training is False


class TestLRUCache:
    def test_eviction_order(self):
        cache = LRUCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a"
        cache.put("c", 3)  # evicts "b"
        assert "b" not in cache
        assert "a" in cache and "c" in cache
        assert len(cache) == 2

    def test_unbounded_and_counters(self):
        cache = LRUCache()
        for i in range(100):
            cache.put(i, i)
        assert len(cache) == 100
        assert cache.get(5) == 5
        assert cache.get("missing") is None
        assert cache.hits == 1 and cache.misses == 1
        cache.clear()
        assert len(cache) == 0

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            LRUCache(0)


class TestServeCLI:
    def test_predict_from_checkpoint(self, tiny, tmp_path, capsys):
        from repro.cli import main

        dataset, splits, locations = tiny
        mc = make_baseline("MC", len(dataset.city.pois), locations)
        mc.fit(splits.train)
        path = save_checkpoint(mc, tmp_path / "mc.npz", dataset=dataset)
        assert main(["predict", "--checkpoint", str(path), "--samples", "3"]) == 0
        out = capsys.readouterr().out
        assert "served 3 requests" in out
        assert out.count("top-5") == 3

    def test_predict_requires_preset_or_checkpoint(self, capsys):
        from repro.cli import main

        assert main(["predict"]) == 2
