"""Durable multi-process cluster serving vs the single-process tiers —
BENCH_cluster.

Extends the BENCH trajectory to the ``repro.cluster`` subsystem.  A
trained quick-profile NYC model replays the dataset's check-ins as a
prequential ingest+predict workload through four deployments:

* **baseline** — the serialised stateless cost model from
  BENCH_stream: rebuild the user's sessions and QR-P graph from the
  raw log per arrival, predict one request at a time (re-measured
  in-run so the gate compares same-machine numbers);
* **stream** — the in-process :class:`~repro.stream.UserStateStore`
  path (PR 5's winning leg), for the single-process ceiling;
* **cluster-2 / cluster-4** — the new tier: shard worker subprocesses
  with consistent-hash routing, every acknowledged event logged to a
  per-shard WAL with periodic snapshots, predictions pipelined through
  each shard's micro-batch scheduler;
* **cluster-4-compiled** — the same 4-shard tier serving captured
  float64 inference plans.  A prequential ingest replay is the most
  tracing-hostile workload there is (histories grow and micro-batch
  sizes churn, so shards keep meeting fresh shape buckets over a tape
  far too short to amortise them — the plan counters recorded per leg
  show traces ≈ misses), so this leg is reported separately rather
  than gated; the compiled path's throughput win is gated in
  ``bench_serve_throughput.py`` where buckets repeat.  What *is*
  asserted here is identity: the compiled cluster's post-ingest
  ranked lists must match the never-crashed single-process control.

After the cluster legs the harness SIGKILLs a shard and times the
supervisor-path restart (process spawn + dataset rebuild + snapshot
load + log-tail fold) — the measured crash-recovery cost, not a guess.

Gates: the 4-shard cluster must sustain >= 2x the serialised
baseline's events/s, and the cluster's post-ingest ranked lists must
be identical to a never-crashed single-process control.  On a
single-core box the cluster cannot beat the *in-process* stream leg
(N processes time-slice one core and pay IPC on top); the JSON records
``cpu_cores`` so the trajectory stays honest about that.

Run standalone with ``PYTHONPATH=src python benchmarks/bench_cluster.py``
(the CI ``cluster-smoke`` job does exactly that and uploads the JSON).
"""

import json
import os
import signal
import tempfile
import time
from pathlib import Path

import pytest

from repro.experiments import format_table, get_profile, prepare, run_one

pytestmark = pytest.mark.slow

RESULTS_DIR = Path(__file__).parent / "results"

MAX_EVENTS = 1500
BATCH_SIZE = 32
# the quick half-profile tape is short (~470 check-ins); replay it in
# several timestamp-shifted passes — users revisiting across later
# sessions — so every leg measures sustained throughput over a stream
# long enough to amortise pipeline fill/drain and scheduling noise
PASSES = 3
PASS_GAP_HOURS = 96.0  # > the 72h session-gap rule: each pass is a new session


def _cluster_leg(checkpoint, persist_dir, leg_name, num_shards, payloads, compiled):
    """Time one full ingest+predict pass through an N-shard cluster."""
    from repro.cluster import ClusterConfig, ClusterRouter

    config = ClusterConfig(
        num_shards=num_shards,
        snapshot_interval=500,
        max_batch_size=BATCH_SIZE,
        compile=compiled,
        plan_dtype="float64",
        # throughput profile: when shard processes oversubscribe the
        # cores, the serve tier's latency-oriented 2ms batch deadline
        # expires before batches fill (a preempted ingest thread stops
        # feeding the queue) and predictions degrade to tiny batches —
        # a wider window keeps micro-batches full under time-slicing
        max_wait_ms=10.0,
        heartbeat_interval_s=1.0,
        auto_restart=False,
    )
    router = ClusterRouter(checkpoint, persist_dir, config=config)
    start = time.perf_counter()
    router.start()
    startup_s = time.perf_counter() - start

    start = time.perf_counter()
    outcome = router.stream_events(payloads, predict_every=1)
    seconds = time.perf_counter() - start
    assert outcome["rejected"] == 0, outcome
    leg = {
        "leg": leg_name,
        "events": len(payloads),
        "predictions": outcome["predictions"],
        "seconds": round(seconds, 3),
        "events_per_second": round(len(payloads) / seconds, 2),
        "startup_seconds": round(startup_s, 2),
        "compile": config.compile,
    }
    if compiled:
        shard_plans = [
            shard.get("plans", {})
            for shard in router.stats()["cluster"]["shards"]
            if shard.get("status") == "ok"
        ]
        leg["plan_dtype"] = config.plan_dtype
        leg["plans"] = sum(len(p.get("plans", [])) for p in shard_plans)
        leg["plan_traces"] = sum(p.get("traces", 0) for p in shard_plans)
        leg["plan_hits"] = sum(p.get("hits", 0) for p in shard_plans)
        leg["plan_misses"] = sum(p.get("misses", 0) for p in shard_plans)
    return router, leg


def _measure_recovery(router):
    """SIGKILL one shard, restart it, and time the full comeback."""
    victim = router.shards[-1]
    os.kill(victim.pid, signal.SIGKILL)
    victim._process.join(10.0)
    victim._mark_dead("killed by bench")
    start = time.perf_counter()
    ready = router.restart_shard(victim.spec.shard_index)
    seconds = time.perf_counter() - start
    recovery = dict(ready.get("recovery") or {})
    recovery["restart_seconds"] = round(seconds, 3)
    return recovery


def run_bench(profile=None, save_report=None):
    profile = (profile or get_profile("quick")).smaller(0.5)
    data = prepare("nyc", profile)
    _, model = run_one("TSPN-RA", data, profile)

    from repro.serve import (
        InferenceServer,
        Predictor,
        load_checkpoint,
        save_checkpoint,
    )
    from repro.stream import (
        StoreConfig,
        UserStateStore,
        compare_replay,
        events_from_checkins,
    )
    from repro.stream.events import CheckinEvent, event_to_json

    base_events = list(events_from_checkins(data.dataset.checkins))
    span = max(event.timestamp for event in base_events) + PASS_GAP_HOURS
    events = [
        CheckinEvent(event.user_id, event.poi_id, event.timestamp + index * span)
        for index in range(PASSES)
        for event in base_events
    ][:MAX_EVENTS]
    payloads = [event_to_json(event) for event in events]

    # ---- single-process legs (baseline re-measured for the gate) ----
    # eager on purpose: these model the legacy deployments the durable
    # tier replaces, and the gate must compare like with like (the
    # eager cluster legs below)
    predictor = Predictor(model, graph_cache_size=512, compile=False)
    comparison = compare_replay(
        predictor, events, batch_size=BATCH_SIZE, max_events=MAX_EVENTS
    )
    reports = comparison.pop("_reports")
    legs = {
        name: {
            "leg": name,
            "events": report.events,
            "predictions": report.predictions,
            "seconds": round(report.seconds, 3),
            "events_per_second": round(report.events_per_second, 2),
        }
        for name, report in reports.items()
    }

    with tempfile.TemporaryDirectory(prefix="bench-cluster-") as tmp:
        tmp = Path(tmp)
        checkpoint = save_checkpoint(model, tmp / "model.npz", dataset=data.dataset)

        # ---- cluster legs ----
        recovery = None
        parity = None
        plan_legs = (
            ("cluster-2", 2, False),
            ("cluster-4", 4, False),
            ("cluster-4-compiled", 4, True),
        )
        for leg_name, num_shards, compiled in plan_legs:
            router, leg = _cluster_leg(
                checkpoint, tmp / f"persist-{leg_name}", leg_name, num_shards,
                payloads, compiled,
            )
            try:
                if leg_name == "cluster-2":
                    recovery = _measure_recovery(router)
                elif compiled:
                    # ranked-list identity vs a never-crashed control:
                    # compiled-float64 shards against the serve tier's
                    # default (also compiled float64, itself identity-
                    # tested against eager) — the compiled cluster
                    # surface checked end-to-end after a real ingest
                    loaded = load_checkpoint(checkpoint, dataset=data.dataset)
                    control = InferenceServer(
                        loaded.model,
                        dataset=data.dataset,
                        state_store=UserStateStore(StoreConfig()),
                    )
                    control.start()
                    try:
                        for event in events:
                            control.checkin(event)
                        users = control.state_store.users()
                        mismatches = sum(
                            1
                            for user in users
                            if router.predict_user(user, k=10)["result"]["top_pois"]
                            != control.predict_user(user).ranked_pois[:10]
                        )
                        parity = {
                            "users_compared": len(users),
                            "ranked_lists_identical": mismatches == 0,
                        }
                    finally:
                        control.stop()
            finally:
                router.stop()
            legs[leg_name] = leg

    baseline_eps = legs["baseline"]["events_per_second"]
    speedups = {
        name: round(leg["events_per_second"] / baseline_eps, 2)
        for name, leg in legs.items()
        if name != "baseline"
    }

    rows = [
        [
            leg["leg"],
            str(leg["events"]),
            str(leg["predictions"]),
            f"{leg['seconds']:8.2f}",
            f"{leg['events_per_second']:9.1f}",
            f"{speedups.get(name, 1.0):5.2f}x",
        ]
        for name, leg in legs.items()
    ]
    table = format_table(
        ["Leg", "Events", "Predictions", "Seconds", "Events/s", "vs baseline"],
        rows,
        title=(
            "Durable cluster serving — shard processes + WAL vs single-process "
            f"(NYC, {os.cpu_count()} core(s); shard recovery "
            f"{recovery['restart_seconds']:.2f}s)"
        ),
    )
    if save_report is not None:
        save_report("cluster", table)
    else:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / "cluster.txt").write_text(table + "\n")
        print(table)

    RESULTS_DIR.mkdir(exist_ok=True)
    trajectory_point = {
        "bench": "cluster",
        "dataset": "nyc",
        "model": "TSPN-RA",
        "cpu_cores": os.cpu_count(),
        "events": len(events),
        "legs": legs,
        "speedup_vs_baseline": speedups,
        "recovery": recovery,
        **(parity or {}),
    }
    out = RESULTS_DIR / "BENCH_cluster.json"
    out.write_text(json.dumps(trajectory_point, indent=2) + "\n")
    print(f"[BENCH trajectory point saved to {out}]")

    assert trajectory_point["ranked_lists_identical"], trajectory_point
    # the tier gate: a 4-shard durable cluster must clear 2x the
    # serialised stateless deployment it replaces
    assert speedups["cluster-4"] >= 2.0, trajectory_point
    return trajectory_point


def bench_cluster(profile, save_report):
    run_bench(profile=profile, save_report=save_report)


if __name__ == "__main__":
    run_bench()
