"""TSPN-RA: Two-Step Prediction Network with Remote sensing Augmentation.

The top-level model (paper Fig. 5).  A forward pass for one prediction
sample runs:

1. **Data extraction** — prefix POI / tile sequences plus the QR-P
   graph of the user's history (built by the tile system and cached per
   current-trajectory).
2. **Feature embedding** — Me1 (CNN over tile imagery), Me2 (POI id +
   category), spatial encoder Ms (Eq. 4), temporal encoders Mt,
   HGAT M_G over the QR-P graph.
3. **Two-step prediction** — fusion modules MP1/MP2 produce
   h_out_tau / h_out_p; step one ranks leaf tiles, step two ranks the
   POIs inside the top-K tiles.

All Table IV ablations are configuration switches
(:class:`~repro.core.config.TSPNRAConfig`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..autograd import Tensor, concat, no_grad, pad_stack, trace
from ..autograd.plan import Plan
from ..data.trajectory import PredictionSample
from ..graphs import QRPGraph, strip_edges
from ..nn import Module, causal_mask, key_padding_mask
from ..obs.tracing import span
from ..serve.protocol import PredictorBase, PredictorResult, target_poi_of
from ..utils.cache import LRUCache
from ..utils.rng import default_rng, derive
from .config import TSPNRAConfig
from .encoders import SpatialEncoder, TemporalEncoder, spatial_encoding, time_slots
from .fusion import FusionModule
from .hgat import HGATEncoder
from .loss import arcface_loss, arcface_loss_batch, combined_loss
from .poi_embedding import POIEmbedder
from .tile_embedding import ImageTileEmbedder, TableTileEmbedder
from .two_step import (
    candidate_pois,
    cosine_similarities,
    normalize_rows,
    rank_pois,
    rank_pois_batch,
    rank_tiles,
    rank_tiles_batch,
    select_tiles,
)

# The historic TSPN-RA-only result type is now the serve-wide one.
PredictionResult = PredictorResult

# Upper bound on the node count of one packed block-diagonal HGAT pass:
# dense (N, N) attention masks grow quadratically, so very large
# inference chunks (the evaluator feeds 128 samples at a time) are
# split into several packs instead of one huge one.  Training batches
# (size 8) always fit in a single pack.
MAX_PACKED_NODES = 512


def _next_pow2(n: int) -> int:
    return 1 << (n - 1).bit_length() if n > 0 else 0


@dataclass
class EncodePlan:
    """One captured encode plan plus everything its replay needs.

    ``tile_table`` / ``poi_table`` are the embedding tables cast to the
    plan dtype (fed as plan inputs each run); ``leaf_norm`` /
    ``poi_norm`` are the hoisted :func:`normalize_rows` ranking tables.
    Instances are immutable snapshots of one ``weights_version`` —
    caches key them accordingly (see ``repro.serve.plans``).
    """

    plan: Plan
    bucket: Tuple[int, int, int, int]
    dtype: np.dtype
    tile_table: np.ndarray
    poi_table: np.ndarray
    leaf_norm: np.ndarray
    poi_norm: np.ndarray


class TSPNRA(Module, PredictorBase):
    """The full model.  Use :meth:`from_dataset` for the common path."""

    name = "TSPN-RA"
    requires_gradient_training = True

    def __init__(
        self,
        tile_system,
        imagery,
        num_pois: int,
        num_categories: int,
        categories: np.ndarray,
        normalized_xy: np.ndarray,
        config: Optional[TSPNRAConfig] = None,
        rng=None,
    ):
        super().__init__()
        rng = rng or default_rng()
        self.config = config or TSPNRAConfig()
        self.tile_system = tile_system
        self.num_pois = num_pois
        self.normalized_xy = np.asarray(normalized_xy, dtype=np.float64)
        dim = self.config.dim

        if self.config.use_imagery:
            self.tile_embedder = ImageTileEmbedder(
                imagery, tile_system.num_tiles, dim, rng=rng
            )
        else:
            self.tile_embedder = TableTileEmbedder(tile_system.num_tiles, dim, rng=rng)
        self.poi_embedder = POIEmbedder(
            num_pois,
            num_categories,
            categories,
            dim,
            alpha=self.config.alpha,
            use_category=self.config.use_category,
            rng=rng,
        )
        if self.config.use_st_encoder:
            self.spatial_encoder = SpatialEncoder(dim, scale=self.config.spatial_scale)
            self.tile_temporal = TemporalEncoder(dim, rng=rng)
            self.poi_temporal = TemporalEncoder(dim, rng=rng)
        if self.config.use_graph:
            self.hgat = HGATEncoder(dim, num_layers=self.config.hgat_layers, rng=rng)
        self.fusion_tile = FusionModule(
            dim,
            num_heads=self.config.num_heads,
            num_layers=self.config.fusion_layers,
            dropout=self.config.dropout,
            rng=rng,
        )
        self.fusion_poi = FusionModule(
            dim,
            num_heads=self.config.num_heads,
            num_layers=self.config.fusion_layers,
            dropout=self.config.dropout,
            rng=rng,
        )

        self._leaf_ids = list(tile_system.leaves())
        self._leaf_index = {leaf: i for i, leaf in enumerate(self._leaf_ids)}
        self._leaf_array = np.asarray(self._leaf_ids, dtype=np.int64)
        # POI -> leaf-tile lookup table (filled lazily; lets the batched
        # encode map a whole (batch, length) id array in one gather)
        self._poi_leaf: Optional[np.ndarray] = None
        # cache of (graph, HGAT masks) keyed by (user, trajectory index);
        # unbounded by default, swappable for a bounded LRU when serving
        self._graph_cache: LRUCache = LRUCache(maxsize=None)
        # HGAT knowledge rows keyed (history_key, weights_version), used
        # only by the compiled feed-prep stage: histories repeat across
        # serving batches (every prefix of a trajectory shares one), so
        # the graph pass — the one encode stage a plan cannot capture —
        # amortises across requests.  weights_version in the key makes
        # reloads invalidate naturally; the LRU bound ages out streams.
        self._knowledge_cache: LRUCache = LRUCache(maxsize=2048)
        # step-two candidate sets keyed by the top-K tile tuple: the
        # tile system is static after construction, and spatial locality
        # makes the same top-K tuples recur across requests, so both the
        # eager and compiled ranking tails share one memo (identical
        # ranked lists either way — the cached value IS the candidate
        # array the uncached path would build)
        self._candidate_cache: LRUCache = LRUCache(maxsize=4096)
        # per-dtype Eq. 4 code tables for the compiled feed-prep gather
        self._spatial_tables: Dict[str, np.ndarray] = {}
        self._negative_rng = derive(rng, 17)

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_dataset(cls, dataset, config: Optional[TSPNRAConfig] = None, rng=None) -> "TSPNRA":
        """Build the model for a :class:`repro.data.Dataset`."""
        from .tilesystem import QuadTreeTileSystem

        tile_system = QuadTreeTileSystem(dataset.quadtree, dataset.road_adjacency)
        pois = dataset.city.pois
        normalized = np.array(
            [dataset.spec.bbox.normalize(x, y) for x, y in pois.xy], dtype=np.float64
        )
        return cls(
            tile_system=tile_system,
            imagery=dataset.imagery,
            num_pois=len(pois),
            num_categories=pois.num_categories,
            categories=pois.categories,
            normalized_xy=normalized,
            config=config,
            rng=rng,
        )

    @property
    def leaf_ids(self) -> List[int]:
        return list(self._leaf_ids)

    # ------------------------------------------------------------------
    # embeddings
    # ------------------------------------------------------------------
    def compute_embeddings(self) -> Tuple[Tensor, Tensor]:
        """E_T for all tiles and E_P for all POIs (one graph per batch)."""
        return self.tile_embedder.all_embeddings(), self.poi_embedder.all_embeddings()

    def _qrp_for(self, sample: PredictionSample) -> Tuple[QRPGraph, dict]:
        key = sample.history_key
        cached = self._graph_cache.get(key)
        if cached is None:
            qrp = self.tile_system.build_graph(sample.history)
            if self.config.drop_edge_type:
                qrp = strip_edges(qrp, self.config.drop_edge_type)
            masks = (
                HGATEncoder.build_masks(qrp) if self.config.use_graph and not qrp.is_empty else {}
            )
            cached = (qrp, masks)
            self._graph_cache.put(key, cached)
        return cached

    def set_graph_cache(self, cache: LRUCache) -> bool:
        """Adopt an external (typically LRU-bounded) QR-P graph cache.

        Entries already built (e.g. during training) are migrated so
        serving starts warm; the new cache's eviction policy applies.
        """
        for key, value in self._graph_cache.items():
            cache.put(key, value)
        self._graph_cache = cache
        return True

    def stream_graph_maintainer(self):
        """Incremental QR-P maintainer whose graphs this model can serve.

        ``None`` when pushed entries would be wrong for this
        configuration: graph-free models never read the cache, and the
        ``drop_edge_type`` ablations serve *stripped* graphs, not the
        canonical ones the maintainer produces.  The cache-key protocol
        keeps correctness either way — this gate only decides whether
        the ingest pipeline may push pre-built entries.
        """
        if not self.config.use_graph or self.config.drop_edge_type:
            return None
        factory = getattr(self.tile_system, "graph_maintainer", None)
        return factory() if callable(factory) else None

    # ------------------------------------------------------------------
    # encoding
    # ------------------------------------------------------------------
    def encode(
        self, sample: PredictionSample, tile_embeddings: Tensor, poi_embeddings: Tensor
    ) -> Tuple[Tensor, Tensor]:
        """Fused output vectors (h_out_tau, h_out_p) for one sample."""
        prefix_ids = np.asarray(sample.prefix_poi_ids, dtype=np.int64)
        timestamps = [v.timestamp for v in sample.prefix]
        tile_ids = np.asarray(
            [self.tile_system.leaf_of_poi(int(p)) for p in prefix_ids], dtype=np.int64
        )

        tile_sequence = tile_embeddings[tile_ids]
        poi_sequence = poi_embeddings[prefix_ids]
        if self.config.use_st_encoder:
            locations = self.normalized_xy[prefix_ids]
            tile_sequence = self.spatial_encoder(tile_sequence, locations)
            tile_sequence = self.tile_temporal(tile_sequence, timestamps)
            poi_sequence = self.poi_temporal(poi_sequence, timestamps)

        history_tiles, history_pois = self._history_knowledge(
            sample, tile_embeddings, poi_embeddings
        )

        tile_output = self.fusion_tile(tile_sequence, history_tiles)
        poi_output = self.fusion_poi(poi_sequence, history_pois)
        return tile_output, poi_output

    def _poi_leaf_table(self) -> np.ndarray:
        if self._poi_leaf is None:
            self._poi_leaf = np.asarray(
                [self.tile_system.leaf_of_poi(p) for p in range(self.num_pois)],
                dtype=np.int64,
            )
        return self._poi_leaf

    def _history_knowledge(self, sample: PredictionSample, tile_embeddings, poi_embeddings):
        """HGAT knowledge rows for one sample: (tiles, pois) or (None, None)."""
        if not (self.config.use_graph and sample.history):
            return None, None
        qrp, masks = self._qrp_for(sample)
        if qrp.is_empty:
            return None, None
        initial = concat(
            [
                tile_embeddings[np.asarray(qrp.tile_refs, dtype=np.int64)],
                poi_embeddings[np.asarray(qrp.poi_refs, dtype=np.int64)],
            ],
            axis=0,
        )
        knowledge = self.hgat(qrp, initial, masks=masks)
        n_tiles = len(qrp.tile_refs)
        return knowledge[0:n_tiles], knowledge[n_tiles:]

    def _history_knowledge_batch(
        self,
        samples: Sequence[PredictionSample],
        tile_embeddings: Tensor,
        poi_embeddings: Tensor,
    ):
        """HGAT knowledge for every *unique* history, in packed passes.

        Returns ``{history_key: (tile rows, poi rows)}`` (``(None,
        None)`` for empty histories/graphs).  Unique QR-P graphs are
        packed block-diagonally and run through
        :meth:`HGATEncoder.forward_packed` — two embedding gathers,
        one permutation and one dense pass per pack replace the
        per-graph Python loop, for inference and the batched training
        loss alike.  Packs are capped at :data:`MAX_PACKED_NODES`
        total nodes so large evaluation chunks never materialise a
        huge dense ``(N, N)`` mask.
        """
        knowledge = {}
        to_pack: List[Tuple[Tuple, QRPGraph, dict]] = []
        seen = set()
        for sample in samples:
            key = sample.history_key
            if key in knowledge or key in seen:
                continue
            if not (self.config.use_graph and sample.history):
                knowledge[key] = (None, None)
                continue
            qrp, masks = self._qrp_for(sample)
            if qrp.is_empty:
                knowledge[key] = (None, None)
            elif not any(qrp.graph.edges[kind] for kind in qrp.graph.edges):
                # Edge-free graph (possible under the drop_edge_type
                # ablations): the per-sample HGAT short-circuits to the
                # identity, so knowledge is just the initial
                # embeddings.  Packing it instead would zero its rows
                # (the packed layer sums messages for every row).
                knowledge[key] = (
                    tile_embeddings[np.asarray(qrp.tile_refs, dtype=np.int64)],
                    poi_embeddings[np.asarray(qrp.poi_refs, dtype=np.int64)],
                )
            else:
                seen.add(key)
                to_pack.append((key, qrp, masks))
        # greedy size-capped packs: dense masks are (N, N), so bound N
        group: List[Tuple[Tuple, QRPGraph, dict]] = []
        group_nodes = 0
        for entry in to_pack:
            nodes = entry[1].graph.num_nodes
            if group and group_nodes + nodes > MAX_PACKED_NODES:
                self._run_packed(group, knowledge, tile_embeddings, poi_embeddings)
                group, group_nodes = [], 0
            group.append(entry)
            group_nodes += nodes
        if group:
            self._run_packed(group, knowledge, tile_embeddings, poi_embeddings)
        return knowledge

    def _run_packed(self, packed, knowledge, tile_embeddings, poi_embeddings):
        """One block-diagonal HGAT pass; fills ``knowledge`` in place."""
        tile_counts = [len(qrp.tile_refs) for _, qrp, _ in packed]
        poi_counts = [len(qrp.poi_refs) for _, qrp, _ in packed]
        all_tile_refs = np.concatenate(
            [np.asarray(qrp.tile_refs, dtype=np.int64) for _, qrp, _ in packed]
        )
        all_poi_refs = np.concatenate(
            [np.asarray(qrp.poi_refs, dtype=np.int64) for _, qrp, _ in packed]
        )
        # Stacked gathers come out [all tiles..., all pois...]; the
        # permutation re-blocks them per graph (tiles then pois), the
        # node order each graph's masks expect.
        total_tiles = int(sum(tile_counts))
        tile_offsets = np.concatenate([[0], np.cumsum(tile_counts)])
        poi_offsets = np.concatenate([[0], np.cumsum(poi_counts)]) + total_tiles
        perm = np.concatenate(
            [
                np.concatenate(
                    [
                        np.arange(tile_offsets[i], tile_offsets[i + 1]),
                        np.arange(poi_offsets[i], poi_offsets[i + 1]),
                    ]
                )
                for i in range(len(packed))
            ]
        ).astype(np.int64)
        h0 = concat(
            [tile_embeddings[all_tile_refs], poi_embeddings[all_poi_refs]], axis=0
        )[perm]
        sizes = [t + p for t, p in zip(tile_counts, poi_counts)]
        out = self.hgat.forward_packed([m for _, _, m in packed], h0, sizes)
        offsets = np.concatenate([[0], np.cumsum(sizes)])
        for i, (key, qrp, _) in enumerate(packed):
            lo = int(offsets[i])
            n_tiles = tile_counts[i]
            knowledge[key] = (
                out[lo : lo + n_tiles],
                out[lo + n_tiles : int(offsets[i + 1])],
            )

    def encode_batch(
        self,
        samples: Sequence[PredictionSample],
        tile_embeddings: Tensor,
        poi_embeddings: Tensor,
    ) -> Tuple[Tensor, Tensor]:
        """Fused (h_out_tau, h_out_p) for a whole batch: ``(B, dim)`` each.

        The vectorised path shared by inference *and* training:
        prefixes are right-padded to the batch maximum and run through
        the spatial/temporal encoders and both fusion stacks as one
        ``(batch, seq, dim)`` tensor (causal masking keeps padded
        positions out of every real position's receptive field).  QR-P
        graph knowledge is still computed per *unique* history —
        graphs are tiny, heterogeneous, and shared by every sample of
        a trajectory — then right-padded on the autograd graph
        (:func:`repro.autograd.pad_stack`) and masked for the batched
        cross attention.  Under gradient tracking every op here is
        differentiable, so :meth:`loss_batch` backpropagates one
        padded mini-batch through the whole encode; under ``no_grad``
        it behaves exactly like the PR 2 inference path.
        """
        batch = len(samples)
        lengths = np.asarray([len(s.prefix) for s in samples], dtype=np.int64)
        if lengths.min() < 1:
            raise ValueError("encode_batch needs non-empty prefixes")
        l_max = int(lengths.max())
        prefix_ids = np.zeros((batch, l_max), dtype=np.int64)
        timestamps = np.zeros((batch, l_max), dtype=np.float64)
        for i, sample in enumerate(samples):
            ids = sample.prefix_poi_ids
            prefix_ids[i, : len(ids)] = ids
            timestamps[i, : len(ids)] = [v.timestamp for v in sample.prefix]
        tile_ids = self._poi_leaf_table()[prefix_ids]

        tile_sequence = tile_embeddings[tile_ids]  # (B, L, dim)
        poi_sequence = poi_embeddings[prefix_ids]
        if self.config.use_st_encoder:
            locations = self.normalized_xy[prefix_ids]  # (B, L, 2)
            tile_sequence = self.spatial_encoder(tile_sequence, locations)
            tile_sequence = self.tile_temporal(tile_sequence, timestamps)
            poi_sequence = self.poi_temporal(poi_sequence, timestamps)

        history_tiles = history_pois = None
        tile_mask = poi_mask = None
        if self.config.use_graph:
            knowledge = self._history_knowledge_batch(
                samples, tile_embeddings, poi_embeddings
            )
            per_sample = [knowledge[s.history_key] for s in samples]
            n_tiles = [0 if k[0] is None else k[0].shape[0] for k in per_sample]
            n_pois = [0 if k[1] is None else k[1].shape[0] for k in per_sample]
            if max(n_tiles, default=0) > 0:
                history_tiles = pad_stack([k[0] for k in per_sample], self.config.dim)
                tile_mask = key_padding_mask(n_tiles, max(n_tiles))
            if max(n_pois, default=0) > 0:
                history_pois = pad_stack([k[1] for k in per_sample], self.config.dim)
                poi_mask = key_padding_mask(n_pois, max(n_pois))

        tile_output = self.fusion_tile.forward_batch(
            tile_sequence, lengths, history_tiles, tile_mask
        )
        poi_output = self.fusion_poi.forward_batch(
            poi_sequence, lengths, history_pois, poi_mask
        )
        return tile_output, poi_output

    # ------------------------------------------------------------------
    # training loss
    # ------------------------------------------------------------------
    def _training_candidates(
        self, target_poi: int, tile_output_data: np.ndarray, leaf_data: np.ndarray
    ) -> List[int]:
        """Step-two candidate POIs for one training sample.

        Shared by :meth:`loss_sample` and :meth:`loss_batch` so the two
        paths can never drift apart — they must select identical
        candidate sets (and, on the no-two-step path, consume
        ``_negative_rng`` in the same per-sample order) for the
        batched/per-sample gradient equivalence to hold.
        """
        if self.config.use_two_step:
            top = select_tiles(
                tile_output_data, leaf_data, self._leaf_ids, self.config.top_k
            )
            candidates = candidate_pois(self.tile_system, top)
            if target_poi not in candidates:
                candidates.append(target_poi)
            return candidates
        negatives = self._negative_rng.choice(
            self.num_pois,
            size=min(self.config.negatives_no_two_step, self.num_pois - 1),
            replace=False,
        )
        return [target_poi] + [int(n) for n in negatives if n != target_poi]

    def loss_sample(
        self, sample: PredictionSample, tile_embeddings: Tensor, poi_embeddings: Tensor
    ) -> Tensor:
        """Eq. 8 combined loss for one sample."""
        tile_output, poi_output = self.encode(sample, tile_embeddings, poi_embeddings)
        config = self.config
        target_poi = sample.target.poi_id
        target_leaf = self.tile_system.leaf_of_poi(target_poi)

        leaf_embeddings = tile_embeddings[self._leaf_array]
        tile_loss = arcface_loss(
            tile_output,
            leaf_embeddings,
            self._leaf_index[target_leaf],
            scale=config.loss_scale,
            margin=config.loss_margin,
        )

        candidates = self._training_candidates(
            target_poi, tile_output.data, leaf_embeddings.data
        )
        candidate_array = np.asarray(candidates, dtype=np.int64)
        target_position = int(np.nonzero(candidate_array == target_poi)[0][0])
        poi_loss = arcface_loss(
            poi_output,
            poi_embeddings[candidate_array],
            target_position,
            scale=config.loss_scale,
            margin=config.loss_margin,
        )
        return combined_loss(tile_loss, poi_loss, beta=config.beta)

    def loss_batch(
        self,
        samples: Sequence[PredictionSample],
        tile_embeddings: Tensor,
        poi_embeddings: Tensor,
    ) -> Tensor:
        """Summed Eq. 8 loss for a whole mini-batch in one forward pass.

        The training counterpart of :meth:`predict_batch`: one padded
        :meth:`encode_batch` (differentiable end to end, including the
        pad/mask/gather ops), then both ArcFace heads vectorised over
        the batch — the tile head against the shared leaf table, the
        POI head against right-padded per-sample candidate sets with
        invalid slots masked out of the softmax.  Returns
        ``sum_i loss_sample(samples[i])`` up to floating-point
        accumulation order; the trainer divides by the batch size,
        exactly as it does on the per-sample path.
        """
        if not samples:
            raise ValueError("loss_batch needs a non-empty batch")
        config = self.config
        batch = len(samples)
        tile_outputs, poi_outputs = self.encode_batch(
            samples, tile_embeddings, poi_embeddings
        )
        leaf_embeddings = tile_embeddings[self._leaf_array]

        target_pois = np.asarray([s.target.poi_id for s in samples], dtype=np.int64)
        target_leaves = self._poi_leaf_table()[target_pois]
        leaf_positions = np.asarray(
            [self._leaf_index[int(leaf)] for leaf in target_leaves], dtype=np.int64
        )
        tile_losses = arcface_loss_batch(
            tile_outputs,
            leaf_embeddings,
            leaf_positions,
            scale=config.loss_scale,
            margin=config.loss_margin,
        )

        # Candidate sets are data extraction (no gradients) and must
        # mirror the per-sample path exactly, sample by sample.
        candidate_lists = [
            self._training_candidates(
                int(target_pois[i]), tile_outputs.data[i], leaf_embeddings.data
            )
            for i in range(batch)
        ]

        counts = np.asarray([len(c) for c in candidate_lists], dtype=np.int64)
        c_max = int(counts.max())
        candidate_ids = np.zeros((batch, c_max), dtype=np.int64)
        target_positions = np.zeros(batch, dtype=np.int64)
        for i, candidates in enumerate(candidate_lists):
            ids = np.asarray(candidates, dtype=np.int64)
            candidate_ids[i, : len(ids)] = ids
            target_positions[i] = int(np.nonzero(ids == target_pois[i])[0][0])
        valid = ~key_padding_mask(counts, c_max)

        poi_losses = arcface_loss_batch(
            poi_outputs,
            poi_embeddings[candidate_ids],
            target_positions,
            scale=config.loss_scale,
            margin=config.loss_margin,
            valid=valid,
        )
        return (tile_losses * config.beta + poi_losses).sum()

    # ------------------------------------------------------------------
    # inference
    # ------------------------------------------------------------------
    def predict(
        self,
        sample: PredictionSample,
        tile_embeddings: Optional[Tensor] = None,
        poi_embeddings: Optional[Tensor] = None,
        k: Optional[int] = None,
    ) -> PredictorResult:
        """Rank tiles then POIs for one sample (no gradients)."""
        k = k if k is not None else self.config.top_k
        with no_grad():
            if tile_embeddings is None or poi_embeddings is None:
                tile_embeddings, poi_embeddings = self.compute_embeddings()
            tile_output, poi_output = self.encode(sample, tile_embeddings, poi_embeddings)
            leaf_embeddings = tile_embeddings.data[self._leaf_array]
            ranked_tiles = rank_tiles(tile_output.data, leaf_embeddings, self._leaf_ids)
            if self.config.use_two_step:
                candidates = candidate_pois(self.tile_system, ranked_tiles[:k])
            else:
                candidates = list(range(self.num_pois))
            candidate_array = np.asarray(candidates, dtype=np.int64)
            ranked_pois = rank_pois(
                poi_output.data,
                poi_embeddings.data[candidate_array] if len(candidates) else np.zeros((0, self.config.dim)),
                candidates,
            )
        target_poi = target_poi_of(sample)
        target_tile = self.tile_system.leaf_of_poi(target_poi) if target_poi >= 0 else -1
        return PredictorResult(
            ranked_pois=ranked_pois,
            target_poi=target_poi,
            ranked_tiles=ranked_tiles,
            target_tile=target_tile,
            num_pois=self.num_pois,
        )

    def predict_batch(
        self,
        samples: Sequence[PredictionSample],
        tile_embeddings: Optional[Tensor] = None,
        poi_embeddings: Optional[Tensor] = None,
        k: Optional[int] = None,
    ) -> List[PredictorResult]:
        """Vectorised :meth:`predict` over a batch (no gradients).

        One padded-batch encode (:meth:`encode_batch`), one matmul over
        the leaf-embedding table for step one and one over the full POI
        table for step two — ranked lists are identical to mapping
        :meth:`predict` over the batch.
        """
        if not samples:
            return []
        k = k if k is not None else self.config.top_k
        with no_grad():
            if tile_embeddings is None or poi_embeddings is None:
                tile_embeddings, poi_embeddings = self.compute_embeddings()
            with span("encode", batch_size=len(samples)):
                tile_outputs, poi_outputs = self.encode_batch(
                    samples, tile_embeddings, poi_embeddings
                )
            with span("rank.two_step", two_step=self.config.use_two_step):
                leaf_embeddings = tile_embeddings.data[self._leaf_array]
                ranked_tiles_all = rank_tiles_batch(
                    tile_outputs.data, leaf_embeddings, self._leaf_ids
                )
                if self.config.use_two_step:
                    candidate_lists = [
                        self._candidates_for(ranked, k) for ranked in ranked_tiles_all
                    ]
                else:
                    candidate_lists = [list(range(self.num_pois))] * len(samples)
                ranked_pois_all = rank_pois_batch(
                    poi_outputs.data, poi_embeddings.data, candidate_lists
                )
        return self._results(samples, ranked_tiles_all, ranked_pois_all)

    def _spatial_code_table(self, dtype) -> np.ndarray:
        """Per-POI Eq. 4 codes as a static gather table.

        The sinusoidal code is a pure elementwise function of each POI's
        (fixed) location, so ``spatial_encoding(xy[ids])`` equals
        ``table[ids]`` row for row, bit-identically.  Computed once per
        dtype; the compiled feed-prep stage then pays one gather per
        batch instead of re-evaluating the trig.
        """
        key = np.dtype(dtype).str
        table = self._spatial_tables.get(key)
        if table is None:
            table = spatial_encoding(
                self.normalized_xy,
                self.config.dim,
                scale=self.spatial_encoder.scale,
                dtype=dtype,
            )
            self._spatial_tables[key] = table
        return table

    def _candidates_for(self, ranked_tiles: Sequence[int], k: int) -> np.ndarray:
        """Step-two candidate ids for a ranked tile list, memoised.

        Same POIs in the same order as calling
        :func:`candidate_pois` directly — the memo only skips the
        repeated per-leaf list walk for top-K tuples already seen.
        Returned arrays are shared cache entries: callers read, never
        mutate.
        """
        key = tuple(ranked_tiles[:k])
        cached = self._candidate_cache.get(key)
        if cached is None:
            cached = np.asarray(
                candidate_pois(self.tile_system, key), dtype=np.int64
            )
            self._candidate_cache.put(key, cached)
        return cached

    def _results(
        self,
        samples: Sequence[PredictionSample],
        ranked_tiles_all: Sequence[List[int]],
        ranked_pois_all: Sequence[List[int]],
    ) -> List[PredictorResult]:
        """Ranked lists -> :class:`PredictorResult`s (shared eager/compiled tail)."""
        results: List[PredictorResult] = []
        for sample, ranked_tiles, ranked_pois in zip(
            samples, ranked_tiles_all, ranked_pois_all
        ):
            target_poi = target_poi_of(sample)
            target_tile = (
                self.tile_system.leaf_of_poi(target_poi) if target_poi >= 0 else -1
            )
            results.append(
                PredictorResult(
                    ranked_pois=ranked_pois,
                    target_poi=target_poi,
                    ranked_tiles=ranked_tiles,
                    target_tile=target_tile,
                    num_pois=self.num_pois,
                )
            )
        return results

    # ------------------------------------------------------------------
    # compiled inference (trace-once, graph-free replay)
    # ------------------------------------------------------------------
    def plan_bucket(self, samples: Sequence[PredictionSample]) -> Tuple[int, int, int, int]:
        """Shape bucket ``(B, L, H_tiles, H_pois)`` this batch pads into.

        Every dimension rounds up — batch to a power of two while ≤ 4,
        then a multiple of 4; sequence length to a multiple of 4;
        knowledge widths to a multiple of 8 — so a handful of plans
        covers the whole serving traffic.  The rounding is deliberately
        tight: self-attention is O(L²), so padding L to the next power
        of two (up to 2× the real length) costs more wall-clock than
        the extra traces a multiple-of-4 grid pays for.  A width of 0
        means *no sample has that kind of knowledge*, which traces a
        plan variant without the cross-attention stage, exactly
        mirroring the eager ``history is None`` branch.
        """
        if not samples:
            raise ValueError("plan_bucket needs a non-empty batch")
        lengths = [len(s.prefix) for s in samples]
        if min(lengths) < 1:
            raise ValueError("plan_bucket needs non-empty prefixes")
        batch = len(samples)
        b_pad = _next_pow2(batch) if batch <= 4 else ((batch + 3) // 4) * 4
        l_pad = ((max(lengths) + 3) // 4) * 4
        max_tiles = max_pois = 0
        if self.config.use_graph:
            for sample in samples:
                n_tiles, n_pois = self._knowledge_counts(sample)
                max_tiles = max(max_tiles, n_tiles)
                max_pois = max(max_pois, n_pois)
        ht = ((max_tiles + 7) // 8) * 8
        hp = ((max_pois + 7) // 8) * 8
        return (b_pad, l_pad, ht, hp)

    def _knowledge_counts(self, sample: PredictionSample) -> Tuple[int, int]:
        """(tile rows, POI rows) the sample's knowledge will occupy.

        Mirrors :meth:`_history_knowledge_batch` row counts without
        running the HGAT — the QR-P graph (cached per history) already
        knows its node counts.
        """
        if not (self.config.use_graph and sample.history):
            return (0, 0)
        qrp, _ = self._qrp_for(sample)
        if qrp.is_empty:
            return (0, 0)
        return (len(qrp.tile_refs), len(qrp.poi_refs))

    def _knowledge_rows(
        self,
        samples: Sequence[PredictionSample],
        tile_embeddings: Tensor,
        poi_embeddings: Tensor,
    ) -> List[Tuple[Optional[np.ndarray], Optional[np.ndarray]]]:
        """Per-sample HGAT knowledge rows as plain arrays, LRU-cached.

        Cache misses are computed in one :meth:`_history_knowledge_batch`
        call (packed block-diagonal HGAT); the packed pass is exactly
        padding/pack-invariant — cross-graph attention weights are exact
        zeros — so rows computed in different batch compositions are
        bit-identical, which keeps the cached-vs-fresh distinction
        invisible to ranked lists.
        """
        version = self.weights_version()
        by_key: Dict = {}
        missing: List[PredictionSample] = []
        queued = set()
        for sample in samples:
            key = sample.history_key
            if key in by_key or key in queued:
                continue
            hit = self._knowledge_cache.get((key, version))
            if hit is not None:
                by_key[key] = hit
            else:
                queued.add(key)
                missing.append(sample)
        if missing:
            knowledge = self._history_knowledge_batch(
                missing, tile_embeddings, poi_embeddings
            )
            for key, (tiles, pois) in knowledge.items():
                rows = (
                    None if tiles is None else np.asarray(tiles.data),
                    None if pois is None else np.asarray(pois.data),
                )
                self._knowledge_cache.put((key, version), rows)
                by_key[key] = rows
        return [by_key[s.history_key] for s in samples]

    def _encode_plan_feeds(
        self,
        samples: Sequence[PredictionSample],
        bucket: Tuple[int, int, int, int],
        dtype: np.dtype,
        tile_embeddings: Tensor,
        poi_embeddings: Tensor,
    ) -> Dict[str, np.ndarray]:
        """Stage one of the compiled encode: batch -> padded feed arrays.

        Everything batch-dependent becomes an explicit array here —
        padded id/timestamp grids, the Eq. 4 spatial code, gather
        positions, knowledge rows and their pre-broadcast masks — so
        stage two (:meth:`_encode_core`) is a pure function a trace can
        capture.  Padded batch rows get a length-1 all-zeros prefix and
        no knowledge; causal masking plus the final gather keep them
        out of every real sample's values.
        """
        b_pad, l_pad, ht, hp = bucket
        batch = len(samples)
        if batch > b_pad:
            raise ValueError(f"batch of {batch} exceeds bucket {bucket}")
        lengths = np.ones(b_pad, dtype=np.int64)
        prefix_ids = np.zeros((b_pad, l_pad), dtype=np.int64)
        timestamps = np.zeros((b_pad, l_pad), dtype=np.float64)
        for i, sample in enumerate(samples):
            ids = sample.prefix_poi_ids
            if len(ids) > l_pad:
                raise ValueError(f"prefix of {len(ids)} exceeds bucket {bucket}")
            prefix_ids[i, : len(ids)] = ids
            timestamps[i, : len(ids)] = [v.timestamp for v in sample.prefix]
            lengths[i] = len(ids)
        feeds: Dict[str, np.ndarray] = {
            "prefix_ids": prefix_ids,
            "tile_ids": self._poi_leaf_table()[prefix_ids],
            "positions": lengths - 1,
        }
        if self.config.use_st_encoder:
            feeds["spatial_code"] = self._spatial_code_table(dtype)[prefix_ids]
            feeds["time_slot_ids"] = time_slots(timestamps)
        if ht or hp:
            rows = self._knowledge_rows(samples, tile_embeddings, poi_embeddings)
            for name, width, side in (("tiles", ht, 0), ("pois", hp, 1)):
                if not width:
                    continue
                history = np.zeros((b_pad, width, self.config.dim), dtype=dtype)
                counts = np.zeros(b_pad, dtype=np.int64)
                for i, per_sample in enumerate(rows):
                    knowledge = per_sample[side]
                    if knowledge is None or not len(knowledge):
                        continue
                    if len(knowledge) > width:
                        raise ValueError(
                            f"{name} knowledge of {len(knowledge)} exceeds bucket {bucket}"
                        )
                    history[i, : len(knowledge)] = knowledge
                    counts[i] = len(knowledge)
                mask = key_padding_mask(counts, width)
                feeds[f"history_{name}"] = history
                feeds[f"{name}_mask"] = mask[:, None, None, :]
                feeds[f"has_{name}"] = (~mask.all(axis=1))[:, None, None]
        return feeds

    def _encode_core(
        self,
        feeds: Dict[str, np.ndarray],
        tile_embeddings: Tensor,
        poi_embeddings: Tensor,
        bucket: Tuple[int, int, int, int],
    ) -> Tuple[Tensor, Tensor]:
        """Stage two of the compiled encode: pure Tensor math over feeds.

        Runs the exact op sequence of :meth:`encode_batch` — embedding
        gathers, spatial/temporal encoders, both fusion stacks, final
        position gather — but consumes only the :meth:`_encode_plan_feeds`
        arrays plus the embedding tables, deriving nothing batch-shaped
        internally.  Traced once per bucket it becomes a :class:`Plan`;
        run eagerly it reproduces ``encode_batch`` values bit-for-bit on
        the real (unpadded) rows.
        """
        _, l_pad, ht, hp = bucket
        tile_sequence = tile_embeddings[feeds["tile_ids"]]  # (B, L, dim)
        poi_sequence = poi_embeddings[feeds["prefix_ids"]]
        if self.config.use_st_encoder:
            tile_sequence = tile_sequence + Tensor(feeds["spatial_code"])
            tile_sequence = tile_sequence + self.tile_temporal.slots(
                feeds["time_slot_ids"]
            )
            poi_sequence = poi_sequence + self.poi_temporal.slots(
                feeds["time_slot_ids"]
            )
        causal = causal_mask(l_pad)[None, None, :, :]
        positions = feeds["positions"]
        if ht:
            tile_output = self.fusion_tile.forward_batch_core(
                tile_sequence,
                positions,
                causal,
                Tensor(feeds["history_tiles"]),
                feeds["tiles_mask"],
                feeds["has_tiles"],
            )
        else:
            tile_output = self.fusion_tile.forward_batch_core(
                tile_sequence, positions, causal
            )
        if hp:
            poi_output = self.fusion_poi.forward_batch_core(
                poi_sequence,
                positions,
                causal,
                Tensor(feeds["history_pois"]),
                feeds["pois_mask"],
                feeds["has_pois"],
            )
        else:
            poi_output = self.fusion_poi.forward_batch_core(
                poi_sequence, positions, causal
            )
        return tile_output, poi_output

    def build_encode_plan(
        self,
        samples: Sequence[PredictionSample],
        bucket: Tuple[int, int, int, int],
        dtype,
        tile_embeddings: Tensor,
        poi_embeddings: Tensor,
    ) -> "EncodePlan":
        """Trace the encode hot path for one shape bucket into a plan.

        The embedding tables are declared as plan *inputs* (they change
        on reload, and baking them would double their memory); every
        parameter inside the fusion stacks is baked, with parameter-only
        subexpressions constant-folded at finalize.  Verification replays
        the plan on the trace batch — bit-exact for float64.  Also
        hoists the :func:`normalize_rows` ranking tables so the ranking
        tail skips the per-batch renormalisation.
        """
        dtype = np.dtype(dtype)
        with no_grad():
            tile_table = np.asarray(tile_embeddings.data)
            poi_table = np.asarray(poi_embeddings.data)
            if tile_table.dtype != dtype:
                tile_table = tile_table.astype(dtype)
            if poi_table.dtype != dtype:
                poi_table = poi_table.astype(dtype)
            feeds = self._encode_plan_feeds(
                samples, bucket, dtype, tile_embeddings, poi_embeddings
            )
            with trace(dtype) as tracer:
                traced = {name: tracer.input(name, array) for name, array in feeds.items()}
                tile_input = Tensor(tracer.input("tile_table", tile_table))
                poi_input = Tensor(tracer.input("poi_table", poi_table))
                tile_output, poi_output = self._encode_core(
                    traced, tile_input, poi_input, bucket
                )
            plan = tracer.finalize([tile_output, poi_output])
        return EncodePlan(
            plan=plan,
            bucket=bucket,
            dtype=dtype,
            tile_table=tile_table,
            poi_table=poi_table,
            leaf_norm=normalize_rows(tile_table[self._leaf_array]),
            poi_norm=normalize_rows(poi_table),
        )

    def predict_batch_compiled(
        self,
        samples: Sequence[PredictionSample],
        entry: "EncodePlan",
        tile_embeddings: Tensor,
        poi_embeddings: Tensor,
        k: Optional[int] = None,
    ) -> List[PredictorResult]:
        """:meth:`predict_batch` through a captured plan (no graph, no
        Tensor wrappers on the hot path).

        Feed prep and the ranking tail share every expression with the
        eager path (same padding maths, same :func:`normalize_rows`
        tables), so a float64 plan yields bit-identical ranked lists;
        float32 plans trade the documented tolerance for bandwidth.
        """
        if not samples:
            return []
        k = k if k is not None else self.config.top_k
        with no_grad():
            with span(
                "plan.replay", batch_size=len(samples), dtype=str(entry.dtype)
            ):
                feeds = self._encode_plan_feeds(
                    samples, entry.bucket, entry.dtype, tile_embeddings, poi_embeddings
                )
                feeds["tile_table"] = entry.tile_table
                feeds["poi_table"] = entry.poi_table
                tile_out, poi_out = entry.plan.run(feeds)
            with span("rank.two_step", two_step=self.config.use_two_step):
                batch = len(samples)
                tile_out = np.asarray(tile_out)[:batch]
                poi_out = np.asarray(poi_out)[:batch]
                ranked_tiles_all = rank_tiles_batch(
                    tile_out, entry.leaf_norm, self._leaf_ids, candidates_normalized=True
                )
                if self.config.use_two_step:
                    candidate_lists = [
                        self._candidates_for(ranked, k) for ranked in ranked_tiles_all
                    ]
                else:
                    candidate_lists = [list(range(self.num_pois))] * batch
                ranked_pois_all = rank_pois_batch(
                    poi_out, entry.poi_norm, candidate_lists, candidates_normalized=True
                )
        return self._results(samples, ranked_tiles_all, ranked_pois_all)

    def score_candidates(
        self, sample: PredictionSample, candidate_ids: Sequence[int], *shared
    ) -> np.ndarray:
        """Cosine scores of h_out_p against the given candidate POIs."""
        with no_grad():
            tile_embeddings, poi_embeddings = shared if shared else self.compute_embeddings()
            _, poi_output = self.encode(sample, tile_embeddings, poi_embeddings)
            candidate_array = np.asarray(candidate_ids, dtype=np.int64)
            return cosine_similarities(poi_output.data, poi_embeddings.data[candidate_array])

    def clear_graph_cache(self) -> None:
        self._graph_cache.clear()
