"""Request tracing: trace ids, per-stage spans, cross-process carriers.

A :class:`Trace` is one request's timeline: a trace id plus an append-
only list of :class:`Span`\\ s, each a named ``[start, end)`` interval
on the *local* monotonic clock with an optional parent (span trees).
Propagation is three-legged, matching the three hand-offs in the
serving stack:

* **thread-local** — the HTTP handler thread activates the trace
  (:func:`activate` / :func:`current_trace`), so code below it
  (validation, submit) finds it without plumbing;
* **object capture** — the scheduler's future hand-off crosses threads,
  so the trace rides the ``ServeRequest`` explicitly and the worker
  re-activates it per request;
* **carrier dict** — the cluster pipes cross *processes*, so the router
  injects ``trace.carrier()`` into the payload, the shard builds a
  child trace from it, and ships its finished spans back in the reply
  for the router to :meth:`~Trace.graft` under its own routing span.
  Grafting re-anchors the child's *relative* offsets at the graft
  point: monotonic clocks are not comparable across processes, but
  span durations and in-trace ordering are.

The hot path must not notice any of this when sampling is off:
:func:`maybe_trace` returns ``None`` without allocating for rate 0,
and the module-level :data:`span` helper is a no-op (no Span object,
no append, no lock) when no trace is active.  ``Span`` keeps a class-
level creation counter so tests can assert exactly that.

Completed traces land in a :class:`SlowRing` — a bounded worst-N ring
backing ``/debug/slow``.
"""

from __future__ import annotations

import heapq
import itertools
import os
import random
import threading
import time
from typing import Dict, Iterator, List, Optional, Sequence

__all__ = [
    "Span",
    "Trace",
    "SlowRing",
    "activate",
    "current_trace",
    "maybe_trace",
    "span",
    "span_creation_count",
]

_local = threading.local()

_trace_counter = itertools.count()


def _new_trace_id() -> str:
    # pid + counter + 32 random bits: unique across the cluster's shard
    # processes without coordination, cheap, and grep-able in logs.
    return f"{os.getpid():x}-{next(_trace_counter):x}-{random.getrandbits(32):08x}"


class Span:
    """One named stage: ``[start, end)`` on the local monotonic clock."""

    __slots__ = ("name", "start", "end", "parent", "tags")

    created = 0  # class-level probe: total Span allocations this process

    def __init__(self, name: str, start: float, parent: Optional[int] = None):
        Span.created += 1
        self.name = name
        self.start = start
        self.end: Optional[float] = None
        self.parent = parent  # index into the owning trace's span list
        self.tags: Optional[Dict[str, object]] = None

    @property
    def duration(self) -> float:
        return (self.end - self.start) if self.end is not None else 0.0

    def tag(self, **tags) -> "Span":
        if self.tags is None:
            self.tags = {}
        self.tags.update(tags)
        return self


def span_creation_count() -> int:
    """Process-wide Span allocation counter (the sampling-off probe)."""
    return Span.created


class Trace:
    """One request's span tree.  Thread-safe appends; bounded size."""

    MAX_SPANS = 256  # runaway guard: a trace is a request, not a log

    __slots__ = ("trace_id", "spans", "started_at", "wall_started_at", "_lock", "_stack")

    def __init__(self, trace_id: Optional[str] = None):
        self.trace_id = trace_id if trace_id is not None else _new_trace_id()
        self.spans: List[Span] = []
        self.started_at = time.monotonic()
        self.wall_started_at = time.time()
        self._lock = threading.Lock()
        # Per-thread open-span stacks: parented spans nest correctly even
        # when several worker threads contribute to one trace.
        self._stack: Dict[int, List[int]] = {}

    # ------------------------------------------------------------------
    # span lifecycle
    # ------------------------------------------------------------------
    def begin(self, name: str, **tags) -> Optional[int]:
        """Open a span; returns its index (``None`` if the trace is full)."""
        thread_id = threading.get_ident()
        with self._lock:
            if len(self.spans) >= self.MAX_SPANS:
                return None
            stack = self._stack.setdefault(thread_id, [])
            parent = stack[-1] if stack else None
            index = len(self.spans)
            new_span = Span(name, time.monotonic(), parent)
            if tags:
                new_span.tag(**tags)
            self.spans.append(new_span)
            stack.append(index)
            return index

    def finish(self, index: Optional[int]) -> None:
        if index is None:
            return
        now = time.monotonic()
        thread_id = threading.get_ident()
        with self._lock:
            self.spans[index].end = now
            stack = self._stack.get(thread_id)
            if stack and stack[-1] == index:
                stack.pop()

    def add_span(self, name: str, start: float, end: float,
                 parent: Optional[int] = None, **tags) -> int:
        """Record an already-measured interval (e.g. queue wait)."""
        with self._lock:
            index = len(self.spans)
            if index >= self.MAX_SPANS:
                return -1
            new_span = Span(name, start, parent)
            new_span.end = end
            if tags:
                new_span.tag(**tags)
            self.spans.append(new_span)
            return index

    def tag_current(self, **tags) -> None:
        """Tag the innermost open span of the calling thread (if any)."""
        thread_id = threading.get_ident()
        with self._lock:
            stack = self._stack.get(thread_id)
            if stack:
                self.spans[stack[-1]].tag(**tags)

    # ------------------------------------------------------------------
    # cross-process propagation
    # ------------------------------------------------------------------
    def carrier(self) -> Dict[str, object]:
        """The wire form: enough for a child process to join the trace."""
        return {"trace_id": self.trace_id, "sampled": True}

    @classmethod
    def from_carrier(cls, carrier: Optional[Dict]) -> Optional["Trace"]:
        if not carrier or not carrier.get("sampled"):
            return None
        return cls(trace_id=str(carrier.get("trace_id", "")) or None)

    def export_spans(self) -> List[Dict]:
        """Spans as JSON-safe dicts, times *relative to trace start*.

        Relative offsets are the only portable form: the child process's
        monotonic clock shares no epoch with the parent's.
        """
        with self._lock:
            return [
                {
                    "name": s.name,
                    "offset": s.start - self.started_at,
                    "duration": s.duration,
                    "parent": s.parent,
                    "tags": dict(s.tags) if s.tags else {},
                }
                for s in self.spans
            ]

    def graft(self, exported: Sequence[Dict], parent: Optional[int] = None,
              anchor: Optional[float] = None) -> None:
        """Attach another process's exported spans under ``parent``.

        ``anchor`` is the local monotonic time the remote work began
        (defaults to now minus the remote spans' total extent — i.e.
        right-aligned, since the reply just arrived).  Remote offsets
        are re-based onto the local clock at the anchor; remote
        parent indices are shifted; remote roots adopt ``parent``.
        """
        if not exported:
            return
        if anchor is None:
            extent = max((s["offset"] + s["duration"]) for s in exported)
            anchor = time.monotonic() - extent
        with self._lock:
            base = len(self.spans)
            for remote in exported:
                if len(self.spans) >= self.MAX_SPANS:
                    break
                remote_parent = remote.get("parent")
                local_parent = base + remote_parent if remote_parent is not None else parent
                start = anchor + remote["offset"]
                grafted = Span(remote["name"], start, local_parent)
                grafted.end = start + remote["duration"]
                if remote.get("tags"):
                    grafted.tag(**remote["tags"])
                self.spans.append(grafted)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def duration(self) -> float:
        with self._lock:
            if not self.spans:
                return 0.0
            return max(s.start + s.duration for s in self.spans) - self.started_at

    def as_dict(self) -> Dict:
        """The ``/debug/slow`` form: id, duration, span tree (children nested)."""
        exported = self.export_spans()
        children: Dict[Optional[int], List[int]] = {}
        for index, exported_span in enumerate(exported):
            children.setdefault(exported_span["parent"], []).append(index)

        def node(index: int) -> Dict:
            exported_span = exported[index]
            built = {
                "name": exported_span["name"],
                "offset_ms": round(exported_span["offset"] * 1000.0, 3),
                "duration_ms": round(exported_span["duration"] * 1000.0, 3),
            }
            if exported_span["tags"]:
                built["tags"] = exported_span["tags"]
            kids = children.get(index)
            if kids:
                built["children"] = [node(k) for k in kids]
            return built

        return {
            "trace_id": self.trace_id,
            "started_at": self.wall_started_at,
            "duration_ms": round(self.duration * 1000.0, 3),
            "spans": [node(i) for i in children.get(None, [])],
        }

    def span_names(self) -> List[str]:
        with self._lock:
            return [s.name for s in self.spans]


# ----------------------------------------------------------------------
# thread-local activation
# ----------------------------------------------------------------------
class activate:
    """Context manager: make ``trace`` the calling thread's active trace.

    ``activate(None)`` is valid and clears the slot — callers wrap
    request handling unconditionally and pass whatever the sampler
    returned.
    """

    __slots__ = ("_trace", "_previous")

    def __init__(self, trace: Optional[Trace]):
        self._trace = trace
        self._previous = None

    def __enter__(self) -> Optional[Trace]:
        self._previous = getattr(_local, "trace", None)
        _local.trace = self._trace
        return self._trace

    def __exit__(self, *exc) -> None:
        _local.trace = self._previous


def current_trace() -> Optional[Trace]:
    return getattr(_local, "trace", None)


def maybe_trace(sample_rate: float) -> Optional[Trace]:
    """Sample a new trace.  The off path allocates nothing.

    ``sample_rate <= 0`` returns before touching the RNG; ``>= 1``
    always traces (tests); in between it is a Bernoulli draw.
    """
    if sample_rate <= 0.0:
        return None
    if sample_rate < 1.0 and random.random() >= sample_rate:
        return None
    return Trace()


# ----------------------------------------------------------------------
# the span() helper — free when no trace is active
# ----------------------------------------------------------------------
class span:
    """``with span("encode"):`` — records a span iff a trace is active.

    The inactive path costs one small object and two attribute reads;
    no Span is allocated, no lock taken.  Instrumented code never
    checks "is tracing on" — it just opens spans.
    """

    __slots__ = ("_name", "_tags", "_trace", "_index")

    def __init__(self, name: str, **tags):
        self._name = name
        self._tags = tags
        self._trace = None
        self._index = None

    def __enter__(self) -> "span":
        active = getattr(_local, "trace", None)
        if active is not None:
            self._trace = active
            self._index = active.begin(self._name, **self._tags)
        return self

    def __exit__(self, *exc) -> None:
        if self._trace is not None:
            self._trace.finish(self._index)

    def tag(self, **tags) -> None:
        if self._trace is not None and self._index is not None:
            self._trace.spans[self._index].tag(**tags)


# ----------------------------------------------------------------------
# slow-request exemplars
# ----------------------------------------------------------------------
class SlowRing:
    """Bounded worst-N ring of completed traces, backing ``/debug/slow``.

    A min-heap of ``(duration, seq, trace)``: a finished trace enters
    only if the ring has room or it is slower than the current fastest
    member, so the ring converges on the N worst *recent* requests
    (durations drift with load; old fast entries get displaced).
    """

    def __init__(self, capacity: int = 64):
        self.capacity = capacity
        self._heap: List = []
        self._seq = itertools.count()
        self._lock = threading.Lock()
        self.observed = 0

    def offer(self, trace: Optional[Trace]) -> None:
        if trace is None:
            return
        duration = trace.duration
        with self._lock:
            self.observed += 1
            entry = (duration, next(self._seq), trace)
            if len(self._heap) < self.capacity:
                heapq.heappush(self._heap, entry)
            elif duration > self._heap[0][0]:
                heapq.heapreplace(self._heap, entry)

    def slow(self, n: int = 10) -> List[Dict]:
        """The ``n`` worst traces, slowest first, as span-tree dicts."""
        with self._lock:
            worst = heapq.nlargest(n, self._heap)
        return [trace.as_dict() for _, _, trace in worst]

    def __len__(self) -> int:
        with self._lock:
            return len(self._heap)

    def clear(self) -> None:
        with self._lock:
            self._heap.clear()
