"""Trace capture: record one eager run into a replayable :class:`Plan`.

The eager engine already funnels every op through
:meth:`Tensor._make`; tracing simply turns that funnel into a tape.
Inside a ``with trace(...) as tr`` block each op additionally records
``(kernel, input slots, output slot)`` with the active
:class:`TraceRecorder`, where a *slot* identifies a concrete ndarray by
object identity.  Arrays announced via :meth:`TraceRecorder.input` are
dynamic feeds; every other leaf array an op touches (parameters,
masks built at trace time) is baked into the plan as a constant.

``finalize`` then:

* **folds** every step whose inputs are all static — the trace-time
  result becomes a baked constant, so parameter-only subexpressions
  like ``W.transpose()`` cost nothing at replay;
* **dead-code-eliminates** steps whose results never reach an output;
* casts floating constants to the plan dtype (float32 plans replay
  float32 end-to-end while the traced model stays float64);
* **verifies** the plan by replaying it on the trace feeds and
  comparing against the traced outputs — bit-exact for same-dtype
  plans, tolerance-checked for down-cast ones.

Ops without a replay kernel raise :class:`TraceError`; callers treat
that as "fall back to eager" (see ``repro.serve.plans``).  The cardinal
hazard of tracing — a *feed-derived* numpy array computed outside
Tensor ops getting silently baked as a constant — is addressed by
convention: trace-friendly model stages accept every batch-dependent
array as an explicit feed (see ``TSPNRA._encode_core``), and the
verification replay guards the kernels themselves.
"""

from __future__ import annotations

import contextlib
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .plan import Kernel, Plan, StepArg
from .tensor import Tensor, _trace_state

__all__ = ["TraceError", "TraceRecorder", "trace", "active_tracer"]


class TraceError(RuntimeError):
    """The traced computation used an op the plan executor cannot replay."""


def active_tracer() -> Optional["TraceRecorder"]:
    """The recorder capturing ops on this thread, if any."""
    return _trace_state.tracer


class TraceRecorder:
    """Accumulates the op tape for one traced run.

    Not reusable: one recorder captures one run and finalizes one plan.
    """

    def __init__(self, dtype=np.float64):
        self.dtype = np.dtype(dtype)
        if self.dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
            raise TraceError(f"plans support float32/float64, got {self.dtype}")
        # slot -> trace-time array; doubles as a keepalive so id()-keyed
        # lookups can never collide with a recycled address.
        self._arrays: List[np.ndarray] = []
        self._slot_of: Dict[int, int] = {}  # id(array) -> slot
        self._inputs: Dict[str, int] = {}  # feed name -> slot
        # (op, kernel, arg slots, out slot) in execution order.
        self._records: List[Tuple[str, Kernel, Tuple[int, ...], int]] = []
        self._finalized = False

    # ------------------------------------------------------------------
    # capture
    # ------------------------------------------------------------------
    def _register(self, array: np.ndarray) -> int:
        slot = len(self._arrays)
        self._arrays.append(array)
        self._slot_of[id(array)] = slot
        return slot

    def input(self, name: str, array) -> np.ndarray:
        """Declare a dynamic feed; returns the exact array to compute with.

        The traced computation must consume the *returned object* (wrap
        it in a ``Tensor`` for float data, pass it raw for index/mask
        data) — identity is how ops are linked back to the feed.
        """
        if name in self._inputs:
            raise TraceError(f"duplicate trace input {name!r}")
        array = np.asarray(array)
        slot = self._slot_of.get(id(array))
        if slot is None:
            slot = self._register(array)
        self._inputs[name] = slot
        return array

    def _resolve(self, array: np.ndarray) -> int:
        slot = self._slot_of.get(id(array))
        if slot is None:
            # Unseen leaf: a parameter or trace-time constant.  Whether
            # it stays constant is decided at finalize by reachability
            # from the declared inputs.
            slot = self._register(array)
        return slot

    def record(
        self,
        out: Tensor,
        parents: Sequence[Tensor],
        op: str,
        kernel: Optional[Kernel],
        extra: Sequence,
    ) -> None:
        """Called by ``Tensor._make`` for every op while tracing."""
        if kernel is None:
            raise TraceError(f"op {op!r} has no replay kernel")
        args = [self._resolve(p.data) for p in parents]
        args.extend(self._resolve(np.asarray(e)) for e in extra)
        out_slot = self._register(out.data)
        self._records.append((op, kernel, tuple(args), out_slot))

    # ------------------------------------------------------------------
    # finalize
    # ------------------------------------------------------------------
    def _bake(self, slot: int) -> np.ndarray:
        array = self._arrays[slot]
        if np.issubdtype(array.dtype, np.floating) and array.dtype != self.dtype:
            return array.astype(self.dtype)
        return array

    def finalize(self, outputs: Sequence[Tensor], verify: bool = True) -> Plan:
        """Fold, eliminate, renumber and (optionally) verify into a Plan."""
        if self._finalized:
            raise TraceError("TraceRecorder.finalize called twice")
        self._finalized = True
        if not self._inputs:
            raise TraceError("trace declared no inputs; nothing is dynamic")
        out_slots = []
        for t in outputs:
            slot = self._slot_of.get(id(t.data))
            if slot is None:  # output untouched by any traced op
                slot = self._register(t.data)
            out_slots.append(slot)

        # Constant folding: a step is live iff any argument is dynamic.
        dynamic = set(self._inputs.values())
        live: List[Tuple[str, Kernel, Tuple[int, ...], int]] = []
        for op, kernel, args, out_slot in self._records:
            if any(a in dynamic for a in args):
                dynamic.add(out_slot)
                live.append((op, kernel, args, out_slot))
        folded = len(self._records) - len(live)

        # Dead-code elimination, backwards from the outputs.
        needed = {s for s in out_slots if s in dynamic}
        kept_reversed = []
        for op, kernel, args, out_slot in reversed(live):
            if out_slot in needed:
                kept_reversed.append((op, kernel, args, out_slot))
                needed.update(a for a in args if a in dynamic)
        kept = list(reversed(kept_reversed))

        # Renumber the surviving dynamic slots into a compact table.
        index_of: Dict[int, int] = {}

        def dyn_index(slot: int) -> int:
            idx = index_of.get(slot)
            if idx is None:
                idx = len(index_of)
                index_of[slot] = idx
            return idx

        inputs: Dict[str, Tuple[int, np.dtype, Tuple[int, ...]]] = {}
        for name, slot in self._inputs.items():
            array = self._arrays[slot]
            feed_dtype = (
                self.dtype
                if np.issubdtype(array.dtype, np.floating)
                else array.dtype
            )
            inputs[name] = (dyn_index(slot), feed_dtype, array.shape)

        constant_bytes = 0
        steps: List[Tuple[Kernel, Tuple[StepArg, ...], int, str]] = []
        for op, kernel, args, out_slot in kept:
            resolved: List[StepArg] = []
            for a in args:
                if a in dynamic:
                    resolved.append(dyn_index(a))
                else:
                    baked = self._bake(a)
                    constant_bytes += baked.nbytes
                    resolved.append(baked)
            steps.append((kernel, tuple(resolved), dyn_index(out_slot), op))

        plan_outputs: List[StepArg] = []
        for slot in out_slots:
            if slot in dynamic:
                plan_outputs.append(dyn_index(slot))
            else:
                baked = self._bake(slot)
                constant_bytes += baked.nbytes
                plan_outputs.append(baked)

        plan = Plan(
            dtype=self.dtype,
            inputs=inputs,
            steps=steps,
            outputs=plan_outputs,
            num_values=len(index_of),
            folded_steps=folded,
            constant_bytes=constant_bytes,
        )
        if verify:
            self._verify(plan, outputs)
        return plan

    def _verify(self, plan: Plan, outputs: Sequence[Tensor]) -> None:
        """Replay on the trace feeds and compare against traced outputs.

        Same-dtype plans must reproduce the eager arrays bit-exactly —
        the kernels are the exact eager numpy expressions.  Down-cast
        plans get a tolerance check (documented float32 envelope).
        """
        feeds = {name: self._arrays[slot] for name, slot in self._inputs.items()}
        replayed = plan.run(feeds)
        for i, (got, want_t) in enumerate(zip(replayed, outputs)):
            want = want_t.data
            if plan.dtype == want.dtype:
                if not np.array_equal(np.asarray(got), want):
                    raise TraceError(
                        f"plan verification failed: output {i} is not "
                        f"bit-identical to the traced run"
                    )
            else:
                if not np.allclose(
                    np.asarray(got, dtype=np.float64),
                    np.asarray(want, dtype=np.float64),
                    rtol=1e-3,
                    atol=1e-5,
                ):
                    raise TraceError(
                        f"plan verification failed: output {i} exceeds the "
                        f"{plan.dtype} tolerance envelope vs the traced run"
                    )


@contextlib.contextmanager
def trace(dtype=np.float64):
    """Record every Tensor op on this thread into a :class:`TraceRecorder`.

    Traces do not nest.  Typical use::

        with no_grad(), trace(np.float32) as tr:
            x = Tensor(tr.input("x", x_array))
            out = model_stage(x)
        plan = tr.finalize([out])
    """
    if _trace_state.tracer is not None:
        raise TraceError("traces do not nest")
    tracer = TraceRecorder(dtype=dtype)
    _trace_state.tracer = tracer
    try:
        yield tracer
    finally:
        _trace_state.tracer = None
