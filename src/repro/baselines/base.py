"""Shared machinery for the ten baseline models (paper Sec. VI-A).

Every baseline is a faithful-in-mechanism, scaled-to-substrate
re-implementation: it keeps the architectural component the paper
credits (or blames) for the original model's behaviour, on top of the
same autograd engine TSPN-RA uses, so efficiency and effectiveness
comparisons are apples-to-apples.

All baselines conform to the serve-wide
:class:`~repro.serve.protocol.PredictorProtocol`:

* ``score(sample) -> Tensor``: logits over the full POI vocabulary;
* ``loss_sample(sample)``: cross-entropy against the true next POI;
* ``predict(sample, *shared) -> PredictorResult``: full ranked POI
  list (shared state is empty for baselines and ignored);
* ``score_candidates(sample, ids, *shared)``: logits restricted to a
  candidate set.

Count-based models (MC) implement ``fit(samples)`` instead of
gradient training; the experiment harness dispatches on
``requires_gradient_training``.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..autograd import Tensor, cross_entropy, no_grad
from ..data.trajectory import PredictionSample
from ..nn import Embedding, Module
from ..serve.protocol import PredictorBase, PredictorResult, target_poi_of
from ..utils.rng import default_rng

# The historic baseline-only result type is now the serve-wide one.
BaselineResult = PredictorResult


class NextPOIBaseline(Module, PredictorBase):
    """Base class for gradient-trained baselines."""

    name = "baseline"
    requires_gradient_training = True

    def __init__(self, num_pois: int, dim: int, rng=None):
        super().__init__()
        self.num_pois = num_pois
        self.dim = dim
        self._rng = rng or default_rng()

    # Subclasses implement score(); everything else is shared.
    def score(self, sample: PredictionSample) -> Tensor:
        raise NotImplementedError

    def loss_sample(self, sample: PredictionSample) -> Tensor:
        logits = self.score(sample)
        return cross_entropy(logits.reshape(1, -1), np.array([sample.target.poi_id]))

    def predict(
        self, sample: PredictionSample, *shared, k: Optional[int] = None
    ) -> PredictorResult:
        with no_grad():
            logits = self.score(sample).data
        order = np.argsort(-logits, kind="stable")
        return PredictorResult(
            ranked_pois=[int(i) for i in order], target_poi=target_poi_of(sample)
        )

    def score_candidates(
        self, sample: PredictionSample, candidate_ids: Sequence[int], *shared
    ) -> np.ndarray:
        with no_grad():
            logits = self.score(sample).data
        return logits[np.asarray(candidate_ids, dtype=np.int64)]


class SequenceEmbedder(Module):
    """POI-id + time-slot embedding shared by the sequential baselines."""

    def __init__(self, num_pois: int, dim: int, use_time: bool = True, rng=None):
        super().__init__()
        from ..data.checkin import SLOTS_PER_DAY, time_slot

        rng = rng or default_rng()
        self._slot_fn = time_slot
        self.poi_table = Embedding(num_pois, dim, rng=rng)
        self.use_time = use_time
        if use_time:
            self.time_table = Embedding(SLOTS_PER_DAY, dim, rng=rng)

    def forward(self, sample_or_visits) -> Tensor:
        visits = (
            sample_or_visits.prefix
            if isinstance(sample_or_visits, PredictionSample)
            else sample_or_visits
        )
        ids = np.array([v.poi_id for v in visits], dtype=np.int64)
        out = self.poi_table(ids)
        if self.use_time:
            slots = np.array([self._slot_fn(v.timestamp) for v in visits], dtype=np.int64)
            out = out + self.time_table(slots)
        return out
