"""Heterogeneous graphs and the QR-P graph construction."""

from .hetero import EDGE_TYPES, NODE_TYPES, HeteroGraph
from .qrp import QRPGraph, build_qrp_graph, strip_edges

__all__ = [
    "EDGE_TYPES",
    "HeteroGraph",
    "NODE_TYPES",
    "QRPGraph",
    "build_qrp_graph",
    "strip_edges",
]
