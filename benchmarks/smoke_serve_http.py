"""HTTP serving smoke: start the server, hit it concurrently, verify.

The CI ``serve-smoke`` job runs this standalone: it trains the quick
NYC profile (scaled down), starts the full serving stack —
:class:`~repro.serve.InferenceServer` worker pool behind the
:class:`~repro.serve.HttpFrontend` on an ephemeral port — then issues
a handful of concurrent ``/predict`` and ``/recommend`` requests plus
``/healthz`` and ``/stats`` reads, asserting every response is a 200
with well-formed JSON.  It exercises exactly the path a deployment
would: real sockets, real concurrent connections, real micro-batches.

Run standalone with
``PYTHONPATH=src python benchmarks/smoke_serve_http.py``.
"""

import json
import threading
import urllib.request

from repro.experiments import get_profile, prepare, run_one
from repro.serve import HttpFrontend, InferenceServer, ServerConfig

CONCURRENT_CLIENTS = 8
REQUESTS_PER_CLIENT = 4


def _post(url, payload):
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return response.status, json.loads(response.read())


def _get(url):
    with urllib.request.urlopen(url, timeout=30) as response:
        return response.status, json.loads(response.read())


def main() -> None:
    profile = get_profile("quick").smaller(0.5)
    data = prepare("nyc", profile)
    _, model = run_one("TSPN-RA", data, profile)
    samples = data.splits.test[:CONCURRENT_CLIENTS * REQUESTS_PER_CLIENT]

    config = ServerConfig(workers=2, max_batch_size=8, max_wait_ms=4.0)
    with InferenceServer(model, config=config) as server:
        with HttpFrontend(server, port=0) as front:
            status, health = _get(front.url + "/healthz")
            assert status == 200 and health["status"] == "ok", health

            failures = []

            def client(index):
                try:
                    for j in range(REQUESTS_PER_CLIENT):
                        sample = samples[(index * REQUESTS_PER_CLIENT + j) % len(samples)]
                        payload = {
                            "user_id": sample.user_id,
                            "prefix": [
                                {"poi_id": v.poi_id, "timestamp": v.timestamp}
                                for v in sample.prefix
                            ],
                            "history": [
                                [
                                    {"poi_id": v.poi_id, "timestamp": v.timestamp}
                                    for v in trajectory.visits
                                ]
                                for trajectory in sample.history
                            ],
                            "k": 5,
                        }
                        endpoint = "/predict" if j % 2 == 0 else "/recommend"
                        status, body = _post(front.url + endpoint, payload)
                        assert status == 200, (endpoint, status, body)
                        key = "top_pois" if endpoint == "/predict" else "recommendations"
                        assert isinstance(body[key], list) and len(body[key]) == 5, body
                        assert all(isinstance(p, int) for p in body[key]), body
                except Exception as error:  # surface per-client failures
                    failures.append((index, repr(error)))

            threads = [
                threading.Thread(target=client, args=(i,))
                for i in range(CONCURRENT_CLIENTS)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert not failures, failures

            status, stats = _get(front.url + "/stats")
            assert status == 200, stats
            expected = CONCURRENT_CLIENTS * REQUESTS_PER_CLIENT
            assert stats["requests"]["completed"] == expected, stats
            assert stats["requests"]["failed"] == 0, stats
            assert stats["batches"]["count"] >= 1, stats
            print(
                f"smoke OK: {expected} concurrent HTTP requests, "
                f"{stats['batches']['count']} micro-batches "
                f"(mean size {stats['batches']['mean_size']:.1f}), "
                f"request p99 {stats['requests']['p99_ms']:.2f} ms"
            )


if __name__ == "__main__":
    main()
