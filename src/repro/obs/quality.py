"""Live prequential model quality: the next check-in grades the last answer.

A next-POI recommender's ground truth arrives on its own ingest path: a
user we just served *will check in somewhere*, and that check-in is the
delayed label for the ranked list we returned.  :class:`QualityMonitor`
closes that loop on the serving path itself:

* :meth:`record` captures each served prediction — user, top-K POI ids,
  ``history_version``, cold-start stratum — in a **bounded pending
  ring** (an ordered dict in serve order, FIFO-evicted at
  ``max_pending``).  Predictions that already carry a ground-truth
  target (prequential replay tapes, evaluation traffic) skip the ring
  and join immediately: the label is in hand, waiting for an ingest
  event that replay has already applied would join never or twice.
* :meth:`observe_checkin` runs as a :class:`~repro.stream.ingest.StreamIngest`
  observer.  The user's next check-in joins the pending entry
  **exactly once** (``pop``; a second check-in finds nothing).  If the
  store rolled the session (the 72h gap rule, or a forced roll), the
  prediction's context is stale — the entry *expires*, no join.  Each
  event also advances an event-time watermark that lazily sweeps
  pending entries whose serve-time context is older than ``gap_hours``,
  so unlabelled predictions cannot pin memory even if their users never
  return (the ring bound is the hard backstop).
* joins update sliding-window Recall@K / MRR / NDCG estimators,
  stratified by **cold-start bucket** — ``"0"``, ``"1"``, ``"2+"``
  prior sessions — as :class:`~repro.obs.metrics.WindowedCounter`
  instruments in a shared :class:`MetricsRegistry`, so the numbers ride
  the existing Prometheus exposition and merge across shard processes
  by the same snapshot discipline as histograms.

Rank accounting (mirrored by the tests, exact by construction): the
label's rank is its 1-based position in the *stored top-K* list, a miss
otherwise.  Recall@k = joins with rank <= k / joins; MRR sums 1/rank
for ranks within top-K (0 for misses); NDCG@k sums 1/log2(rank+1) for
ranks <= k.  All ratios are windowed-sum quotients, so any scrape is a
consistent point-in-time estimate.

Durability: the pending ring is deliberately **ephemeral** — it is
serving-process state, not model state.  After a crash-and-recover the
store rebuilds from WAL+snapshot but pending predictions are gone:
joins/expiries restart from clean counters on the recovered shard, and
no stale pre-crash entry can ever mis-join post-recovery traffic.
"""

from __future__ import annotations

import math
import threading
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

from .metrics import MetricsRegistry, WindowedCounter

__all__ = ["QualityMonitor", "cold_start_stratum", "STRATA"]

STRATA: Tuple[str, ...] = ("0", "1", "2+")


def cold_start_stratum(num_prior_sessions: int) -> str:
    """Cold-start bucket from the user's completed-session count."""
    if num_prior_sessions <= 0:
        return "0"
    if num_prior_sessions == 1:
        return "1"
    return "2+"


class _Pending:
    """One unlabelled served prediction awaiting its user's next check-in."""

    __slots__ = ("user_id", "top_pois", "stratum", "history_version", "last_timestamp")

    def __init__(self, user_id, top_pois, stratum, history_version, last_timestamp):
        self.user_id = user_id
        self.top_pois = top_pois
        self.stratum = stratum
        self.history_version = history_version
        self.last_timestamp = last_timestamp


class QualityMonitor:
    """Prequential Recall@K/MRR/NDCG over a sliding window, by stratum.

    Thread-safe: server workers ``record`` concurrently while the
    ingest thread joins.  All estimator state lives in registry
    instruments; the monitor itself only owns the pending ring.
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        *,
        window_seconds: float = 3600.0,
        top_k: int = 20,
        ks: Sequence[int] = (5, 10, 20),
        max_pending: int = 4096,
        gap_hours: float = 72.0,
        slots: int = 60,
        clock=None,
    ):
        if window_seconds <= 0:
            raise ValueError("window_seconds must be positive")
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        if gap_hours <= 0:
            raise ValueError("gap_hours must be positive")
        self.ks = tuple(sorted({int(k) for k in ks}))
        if not self.ks or self.ks[0] < 1:
            raise ValueError("ks must be positive integers")
        # storing fewer ids than the largest requested cutoff would
        # silently undercount hits@k; widen the stored list instead
        self.top_k = max(int(top_k), self.ks[-1])
        self.window_seconds = float(window_seconds)
        self.max_pending = int(max_pending)
        # event timestamps are in hours everywhere in this codebase
        # (StoreConfig.gap_hours is compared to raw timestamp deltas),
        # so the sweep horizon stays in the same units — converting to
        # seconds would make the sweep effectively never fire
        self.gap_hours = float(gap_hours)
        self.registry = registry if registry is not None else MetricsRegistry()

        self._lock = threading.Lock()
        self._pending: "OrderedDict[int, _Pending]" = OrderedDict()
        self._event_watermark = float("-inf")

        reg = self.registry
        self._predictions = {
            s: reg.counter(
                "repro_quality_predictions",
                "Served predictions recorded by the quality monitor",
                {"stratum": s},
            )
            for s in STRATA
        }
        self._joins_total = {
            s: reg.counter(
                "repro_quality_joins",
                "Check-ins joined against a served prediction",
                {"stratum": s},
            )
            for s in STRATA
        }
        self._expired = reg.counter(
            "repro_quality_expired",
            "Pending predictions expired by session roll or the gap rule",
        )
        self._replaced = reg.counter(
            "repro_quality_replaced",
            "Pending predictions superseded by a newer one (latest wins)",
        )
        self._evicted = reg.counter(
            "repro_quality_evicted",
            "Pending predictions dropped by the FIFO ring bound",
        )
        reg.gauge(
            "repro_quality_pending",
            "Served predictions awaiting their user's next check-in",
            fn=lambda: float(len(self._pending)),
        )
        reg.gauge(
            "repro_quality_window_seconds", "Quality estimator window"
        ).set(self.window_seconds)
        reg.gauge(
            "repro_quality_topk", "Ranked-list depth stored per prediction"
        ).set(float(self.top_k))

        def _windowed(name: str, help: str, labels: Dict[str, str]) -> WindowedCounter:
            return reg.windowed(
                name,
                help,
                labels,
                window_seconds=self.window_seconds,
                slots=slots,
                clock=clock,
            )

        self._w_joins = {
            s: _windowed(
                "repro_quality_window_joins", "Joins in the window", {"stratum": s}
            )
            for s in STRATA
        }
        self._w_mrr = {
            s: _windowed(
                "repro_quality_window_mrr_sum",
                "Sum of reciprocal ranks in the window",
                {"stratum": s},
            )
            for s in STRATA
        }
        self._w_hits = {
            (s, k): _windowed(
                "repro_quality_window_hits",
                "Joins whose label ranked within k",
                {"stratum": s, "k": str(k)},
            )
            for s in STRATA
            for k in self.ks
        }
        self._w_ndcg = {
            (s, k): _windowed(
                "repro_quality_window_ndcg_sum",
                "Sum of NDCG@k gains in the window",
                {"stratum": s, "k": str(k)},
            )
            for s in STRATA
            for k in self.ks
        }

        # ratio gauges are callbacks over the windowed sums: the hot
        # path pays nothing, and "all" is the strata sum at read time
        def _ratio(num, den):
            def read():
                j = den()
                return num() / j if j else 0.0

            return read

        for s in STRATA + ("all",):
            strata = STRATA if s == "all" else (s,)

            def joins_of(strata=strata):
                return sum(self._w_joins[x].value for x in strata)

            reg.gauge(
                "repro_quality_mrr",
                "Windowed mean reciprocal rank",
                {"stratum": s},
                fn=_ratio(
                    lambda strata=strata: sum(self._w_mrr[x].value for x in strata),
                    joins_of,
                ),
            )
            for k in self.ks:
                reg.gauge(
                    "repro_quality_recall",
                    "Windowed Recall@k",
                    {"stratum": s, "k": str(k)},
                    fn=_ratio(
                        lambda strata=strata, k=k: sum(
                            self._w_hits[(x, k)].value for x in strata
                        ),
                        joins_of,
                    ),
                )
                reg.gauge(
                    "repro_quality_ndcg",
                    "Windowed NDCG@k",
                    {"stratum": s, "k": str(k)},
                    fn=_ratio(
                        lambda strata=strata, k=k: sum(
                            self._w_ndcg[(x, k)].value for x in strata
                        ),
                        joins_of,
                    ),
                )

    # ------------------------------------------------------------------
    # serve side
    # ------------------------------------------------------------------
    def record(self, sample, result) -> Optional[str]:
        """Record one served prediction; returns the path it took.

        ``sample`` duck-types :class:`PredictionSample` (``user_id``,
        ``history``, ``prefix``, ``target``, ``history_key``);
        ``result`` needs only ``ranked_pois``.  Labelled samples join
        immediately (``"joined"``); unlabelled ones enter the pending
        ring (``"pending"``).  Anonymous traffic (negative user id)
        cannot ever be joined and is skipped (``None``).
        """
        user_id = getattr(sample, "user_id", -1)
        if user_id is None or user_id < 0:
            return None
        stratum = cold_start_stratum(len(getattr(sample, "history", ()) or ()))
        top = result.ranked_pois[: self.top_k]
        # ndarray.tolist() is one C call; the element-wise int() loop it
        # replaces dominated the per-prediction cost on the serving path
        top_pois = top.tolist() if hasattr(top, "tolist") else [int(p) for p in top]
        self._predictions[stratum].inc()
        target = getattr(sample, "target", None)
        if target is not None:
            self._join(stratum, top_pois, int(target.poi_id))
            return "joined"
        history_key = getattr(sample, "history_key", None)
        history_version = (
            history_key[2]
            if isinstance(history_key, tuple) and len(history_key) >= 3
            else None
        )
        prefix = getattr(sample, "prefix", ()) or ()
        context_timestamp = (
            float(prefix[-1].timestamp) if len(prefix) else None
        )
        replaced = evicted = 0
        with self._lock:
            # prefix-less predictions (user unknown to the store) carry
            # no event-time context; age them from the stream watermark
            # at serve time so the gap sweep still applies post-startup
            last_timestamp = (
                context_timestamp
                if context_timestamp is not None
                else self._event_watermark
            )
            entry = _Pending(
                user_id, top_pois, stratum, history_version, last_timestamp
            )
            if user_id in self._pending:
                del self._pending[user_id]  # latest wins, re-enter at the tail
                replaced = 1
            self._pending[user_id] = entry
            while len(self._pending) > self.max_pending:
                self._pending.popitem(last=False)
                evicted += 1
        if replaced:
            self._replaced.inc(replaced)
        if evicted:
            self._evicted.inc(evicted)
        return "pending"

    # ------------------------------------------------------------------
    # ingest side
    # ------------------------------------------------------------------
    def observe_checkin(self, event, append_result=None) -> Optional[str]:
        """Join ``event`` against its user's pending prediction, if any.

        ``append_result`` is the store's :class:`AppendResult`; when it
        reports ``session_rolled`` the prediction expired (its serving
        context belonged to the previous session).  Returns ``"joined"``,
        ``"expired"``, or ``None`` (nothing pending for this user).
        """
        timestamp = float(getattr(event, "timestamp", float("-inf")))
        swept: List[_Pending] = []
        with self._lock:
            if timestamp > self._event_watermark:
                self._event_watermark = timestamp
            entry = self._pending.pop(int(event.user_id), None)
            # lazy gap-rule sweep from the FIFO head: entries served
            # against context older than the gap can never join
            horizon = self._event_watermark - self.gap_hours
            while self._pending:
                _, oldest = next(iter(self._pending.items()))
                # entries served before any stream event carry no
                # event-time context at all (-inf); only the ring bound
                # can reclaim them — never the gap sweep
                if (
                    oldest.last_timestamp == float("-inf")
                    or oldest.last_timestamp > horizon
                ):
                    break
                self._pending.popitem(last=False)
                swept.append(oldest)
        if swept:
            self._expired.inc(len(swept))
        if entry is None:
            return None
        if append_result is not None and getattr(append_result, "session_rolled", False):
            self._expired.inc()
            return "expired"
        self._join(entry.stratum, entry.top_pois, int(event.poi_id))
        return "joined"

    def _join(self, stratum: str, top_pois: Sequence[int], label_poi: int) -> None:
        try:
            rank = top_pois.index(label_poi) + 1
        except ValueError:
            rank = None
        self._joins_total[stratum].inc()
        # every windowed instrument shares the monitor's window shape,
        # so one clock read serves the whole fan-out (up to 8 cells)
        joins = self._w_joins[stratum]
        slot = joins._now_slot()
        joins.inc_at(slot)
        if rank is None:
            return
        self._w_mrr[stratum].inc_at(slot, 1.0 / rank)
        gain = 1.0 / math.log2(rank + 1)
        for k in self.ks:
            if rank <= k:
                self._w_hits[(stratum, k)].inc_at(slot)
                self._w_ndcg[(stratum, k)].inc_at(slot, gain)

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def pending_count(self) -> int:
        return len(self._pending)

    def summary(self) -> Dict:
        """JSON-safe report: totals, per-stratum windows, and ratios.

        Each stratum carries its **raw windowed sums** alongside the
        ratios so per-shard summaries merge by addition (the cluster
        router recomputes ratios from summed sums — a mean of ratios
        would weight an idle shard equal to a busy one).
        """
        strata: Dict[str, Dict] = {}
        for s in STRATA + ("all",):
            group = STRATA if s == "all" else (s,)
            joins = sum(self._w_joins[x].value for x in group)
            mrr_sum = sum(self._w_mrr[x].value for x in group)
            hits = {
                str(k): sum(self._w_hits[(x, k)].value for x in group)
                for k in self.ks
            }
            ndcg_sum = {
                str(k): sum(self._w_ndcg[(x, k)].value for x in group)
                for k in self.ks
            }
            strata[s] = {
                "window": {
                    "joins": joins,
                    "hits": hits,
                    "mrr_sum": mrr_sum,
                    "ndcg_sum": ndcg_sum,
                },
                "recall": {k: (v / joins if joins else 0.0) for k, v in hits.items()},
                "mrr": mrr_sum / joins if joins else 0.0,
                "ndcg": {
                    k: (v / joins if joins else 0.0) for k, v in ndcg_sum.items()
                },
            }
        return {
            "enabled": True,
            "window_seconds": self.window_seconds,
            "top_k": self.top_k,
            "ks": list(self.ks),
            "pending": len(self._pending),
            "max_pending": self.max_pending,
            "predictions": {s: int(c.value) for s, c in self._predictions.items()},
            "joins": {s: int(c.value) for s, c in self._joins_total.items()},
            "expired": int(self._expired.value),
            "replaced": int(self._replaced.value),
            "evicted": int(self._evicted.value),
            "strata": strata,
        }
