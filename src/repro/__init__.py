"""TSPN-RA reproduction: spatial & semantic next-POI prediction with
remote-sensing augmentation (ICDE 2024).

Public API tour
---------------
Research loop — build, train, evaluate:

>>> from repro.data import build_dataset, make_samples, split_samples
>>> from repro.core import TSPNRA, TSPNRAConfig
>>> from repro.train import Trainer, TrainConfig
>>> from repro.eval import evaluate
>>> dataset = build_dataset("nyc", seed=0, scale=0.3)
>>> splits = split_samples(make_samples(dataset))
>>> model = TSPNRA.from_dataset(dataset, TSPNRAConfig(dim=32))
>>> Trainer(model, TrainConfig(epochs=2)).fit(splits.train)  # doctest: +SKIP
>>> evaluate(model, splits.test)  # doctest: +SKIP

Serving loop — persist, reload, serve (``repro.serve``):

>>> from repro.serve import Predictor, save_checkpoint  # doctest: +SKIP
>>> save_checkpoint(model, "tspnra.npz", dataset=dataset)  # doctest: +SKIP
>>> predictor = Predictor.from_checkpoint("tspnra.npz")  # doctest: +SKIP
>>> predictor.predict_batch(splits.test[:32])  # doctest: +SKIP
>>> predictor.recommend(splits.test[0].prefix, k=5)  # doctest: +SKIP
>>> predictor.stats.throughput  # doctest: +SKIP

Every model — TSPN-RA and all ten baselines — conforms to
``repro.serve.PredictorProtocol``: one result type
(``PredictorResult``), shared-state inference
(``compute_embeddings()`` / ``predict(sample, *shared)``),
``score_candidates``, ``top_k`` and ``target_rank``.

Sub-packages: ``autograd`` / ``nn`` / ``optim`` (the ML substrate),
``geo`` / ``spatial`` / ``roadnet`` / ``imagery`` (the urban substrate),
``data`` (check-ins), ``graphs`` (QR-P), ``core`` (the model),
``baselines``, ``train``, ``eval``, ``serve`` (checkpoints + serving
facade), ``stream`` (online ingestion + prequential evaluation),
``experiments``.
"""

__version__ = "1.1.0"

from . import (
    autograd,
    baselines,
    core,
    data,
    eval,
    experiments,
    geo,
    graphs,
    imagery,
    nn,
    optim,
    roadnet,
    serve,
    spatial,
    stream,
    train,
    utils,
)

__all__ = [
    "autograd",
    "baselines",
    "core",
    "data",
    "eval",
    "experiments",
    "geo",
    "graphs",
    "imagery",
    "nn",
    "optim",
    "roadnet",
    "serve",
    "spatial",
    "stream",
    "train",
    "utils",
]
