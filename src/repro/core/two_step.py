"""Two-step prediction: tile selection then POI ranking (paper Sec. V-B).

Step one ranks all leaf tiles by cosine similarity to the fused tile
vector h_out_tau; step two restricts POI candidates to the top-K tiles
and ranks them by cosine similarity to h_out_p.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..serve.protocol import rank_of_target  # noqa: F401  (canonical home; re-exported)


def cosine_similarities(output: np.ndarray, candidates: np.ndarray) -> np.ndarray:
    """cos(theta) between one output vector and each candidate row."""
    out_norm = output / (np.linalg.norm(output) + 1e-12)
    cand_norm = candidates / (np.linalg.norm(candidates, axis=1, keepdims=True) + 1e-12)
    return cand_norm @ out_norm


def rank_by_cosine(output: np.ndarray, candidates: np.ndarray) -> np.ndarray:
    """Indices of ``candidates`` rows sorted by descending cosine sim."""
    return np.argsort(-cosine_similarities(output, candidates), kind="stable")


def select_tiles(
    tile_output: np.ndarray,
    leaf_embeddings: np.ndarray,
    leaf_ids: Sequence[int],
    k: int,
) -> List[int]:
    """Step one: the top-K leaf tiles R_T[1:K]."""
    order = rank_by_cosine(tile_output, leaf_embeddings)
    return [leaf_ids[i] for i in order[:k]]


def rank_tiles(
    tile_output: np.ndarray,
    leaf_embeddings: np.ndarray,
    leaf_ids: Sequence[int],
) -> List[int]:
    """The full ranked tile list R_T."""
    order = rank_by_cosine(tile_output, leaf_embeddings)
    return [leaf_ids[i] for i in order]


def candidate_pois(tile_system, top_tiles: Sequence[int]) -> List[int]:
    """POIs located inside the top-K tiles (step-two candidate set)."""
    pois: List[int] = []
    for tile in top_tiles:
        pois.extend(tile_system.pois_in_leaf(tile))
    return pois


def rank_pois(
    poi_output: np.ndarray,
    poi_embeddings: np.ndarray,
    candidate_ids: Sequence[int],
) -> List[int]:
    """Step two: the ranked POI list R_P over the candidate set."""
    if len(candidate_ids) == 0:
        return []
    order = rank_by_cosine(poi_output, poi_embeddings)
    return [candidate_ids[i] for i in order]


