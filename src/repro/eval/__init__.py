"""Evaluation: metrics, evaluation loops, efficiency probes."""

from .efficiency import EfficiencyReport, measure
from .evaluator import collect_ranks, collect_tile_ranks, evaluate
from .metrics import DEFAULT_KS, metric_table, mrr, ndcg_at_k, recall_at_k

__all__ = [
    "DEFAULT_KS",
    "EfficiencyReport",
    "collect_ranks",
    "collect_tile_ranks",
    "evaluate",
    "measure",
    "metric_table",
    "mrr",
    "ndcg_at_k",
    "recall_at_k",
]
