"""Region quad-tree (paper Sec. II-A, Fig. 2).

The tree recursively splits any tile holding more than ``max_pois``
(the paper's Ω) POIs into four quadrants, up to ``max_depth`` (the
paper's D).  Leaf tiles partition the region: every POI lies in exactly
one leaf.  Tiles at *all* levels carry bounding boxes, so both leaves
and internal nodes can be paired with remote-sensing imagery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..geo import BoundingBox


@dataclass
class QuadTreeNode:
    """One tile.  ``children`` is empty exactly when this is a leaf."""

    node_id: int
    bbox: BoundingBox
    depth: int
    parent_id: Optional[int] = None
    children: List[int] = field(default_factory=list)
    poi_ids: List[int] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        return not self.children


class RegionQuadTree:
    """Quad-tree over a point set.

    Parameters
    ----------
    bbox:
        The whole considered region.
    max_depth:
        Paper parameter D — the root has depth 0, leaves at most
        ``max_depth``.
    max_pois:
        Paper parameter Ω — a tile splits when it holds more than this
        many POIs (unless already at ``max_depth``).
    """

    def __init__(self, bbox: BoundingBox, max_depth: int = 8, max_pois: int = 100):
        if max_depth < 0:
            raise ValueError("max_depth must be non-negative")
        if max_pois < 1:
            raise ValueError("max_pois must be positive")
        self.bbox = bbox
        self.max_depth = max_depth
        self.max_pois = max_pois
        self.nodes: List[QuadTreeNode] = []
        self._leaf_of_poi: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        bbox: BoundingBox,
        points: np.ndarray,
        max_depth: int = 8,
        max_pois: int = 100,
        poi_ids: Optional[Sequence[int]] = None,
    ) -> "RegionQuadTree":
        """Construct the tree for ``points`` of shape ``(N, 2)``."""
        tree = cls(bbox, max_depth=max_depth, max_pois=max_pois)
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[1] != 2:
            raise ValueError("points must have shape (N, 2)")
        ids = list(range(len(points))) if poi_ids is None else list(poi_ids)
        if len(ids) != len(points):
            raise ValueError("poi_ids length mismatch")
        root = QuadTreeNode(node_id=0, bbox=bbox, depth=0, poi_ids=ids)
        tree.nodes.append(root)
        tree._split_recursive(0, points, dict(zip(ids, range(len(points)))))
        for node in tree.nodes:
            if node.is_leaf:
                for pid in node.poi_ids:
                    tree._leaf_of_poi[pid] = node.node_id
        return tree

    def _split_recursive(self, node_id: int, points: np.ndarray, row_of: Dict[int, int]) -> None:
        node = self.nodes[node_id]
        if len(node.poi_ids) <= self.max_pois or node.depth >= self.max_depth:
            return
        quadrant_boxes = list(node.bbox.quadrants())
        buckets: List[List[int]] = [[] for _ in quadrant_boxes]
        for pid in node.poi_ids:
            x, y = points[row_of[pid]]
            for q, box in enumerate(quadrant_boxes):
                if box.contains(x, y):
                    buckets[q].append(pid)
                    break
            else:  # on the outer max edge: closed containment fallback
                buckets[-1].append(pid)
        node.poi_ids = []
        for box, bucket in zip(quadrant_boxes, buckets):
            child = QuadTreeNode(
                node_id=len(self.nodes),
                bbox=box,
                depth=node.depth + 1,
                parent_id=node_id,
                poi_ids=bucket,
            )
            node.children.append(child.node_id)
            self.nodes.append(child)
            self._split_recursive(child.node_id, points, row_of)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.nodes)

    @property
    def root(self) -> QuadTreeNode:
        return self.nodes[0]

    def node(self, node_id: int) -> QuadTreeNode:
        return self.nodes[node_id]

    def leaves(self) -> List[int]:
        """Ids of all leaf tiles (the tile-prediction candidate set)."""
        return [n.node_id for n in self.nodes if n.is_leaf]

    def leaf_for_point(self, x: float, y: float) -> int:
        """Descend from the root to the unique leaf containing (x, y)."""
        if not self.bbox.contains_closed(x, y):
            raise ValueError(f"point ({x}, {y}) outside region {self.bbox}")
        current = self.root
        while not current.is_leaf:
            for child_id in current.children:
                if self.nodes[child_id].bbox.contains(x, y):
                    current = self.nodes[child_id]
                    break
            else:
                # Point on the region's max edge: take the closest child.
                current = max(
                    (self.nodes[c] for c in current.children),
                    key=lambda n: n.bbox.contains_closed(x, y),
                )
        return current.node_id

    def leaf_of_poi(self, poi_id: int) -> int:
        """Leaf tile holding a POI that was present at build time."""
        return self._leaf_of_poi[poi_id]

    def pois_in_leaf(self, leaf_id: int) -> List[int]:
        node = self.nodes[leaf_id]
        if not node.is_leaf:
            raise ValueError(f"node {leaf_id} is not a leaf")
        return list(node.poi_ids)

    def bbox_of(self, node_id: int) -> BoundingBox:
        """Bounding box of any tile (protocol shared with GridIndex)."""
        return self.nodes[node_id].bbox

    def path_to_root(self, node_id: int) -> List[int]:
        """Node ids from ``node_id`` up to (and including) the root."""
        path = [node_id]
        while self.nodes[path[-1]].parent_id is not None:
            path.append(self.nodes[path[-1]].parent_id)
        return path

    def depth(self) -> int:
        return max(n.depth for n in self.nodes)

    # ------------------------------------------------------------------
    # minimal sub-tree extraction (QR-P construction step 1)
    # ------------------------------------------------------------------
    def minimal_subtree(self, leaf_ids: Iterable[int]) -> Tuple[Set[int], List[Tuple[int, int]]]:
        """Smallest sub-tree whose leaves cover ``leaf_ids``.

        Returns ``(node_ids, branch_edges)`` where branch edges are
        (parent, child) pairs — exactly the QR-P ``branch`` edges.
        """
        required = set(leaf_ids)
        if not required:
            return set(), []
        keep: Set[int] = set()
        for leaf in required:
            if self.nodes[leaf].node_id != leaf:
                raise ValueError(f"unknown node id {leaf}")
            keep.update(self.path_to_root(leaf))
        # Prune the chain above the lowest common ancestor: the minimal
        # sub-tree is rooted at the LCA of the required leaves.
        lca = self._lowest_common_ancestor(required)
        lca_depth = self.nodes[lca].depth
        keep = {n for n in keep if self.nodes[n].depth >= lca_depth}
        edges = [
            (self.nodes[n].parent_id, n)
            for n in keep
            if self.nodes[n].parent_id is not None and self.nodes[n].parent_id in keep
        ]
        return keep, edges

    def _lowest_common_ancestor(self, node_ids: Set[int]) -> int:
        paths = [list(reversed(self.path_to_root(n))) for n in node_ids]
        lca = paths[0][0]
        for level in range(min(len(p) for p in paths)):
            level_nodes = {p[level] for p in paths}
            if len(level_nodes) == 1:
                lca = level_nodes.pop()
            else:
                break
        return lca
