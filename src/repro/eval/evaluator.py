"""Evaluation loop: run a model over test samples and compute metrics."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from ..autograd import no_grad
from ..data.trajectory import PredictionSample
from .metrics import DEFAULT_KS, metric_table


def collect_ranks(model, samples: Sequence[PredictionSample]) -> List[int]:
    """Target POI rank for every sample.

    Works for any model exposing the next-POI interface
    (``predict(sample, ...)`` returning an object with ``poi_rank``,
    as both TSPN-RA and all baselines do).
    """
    model.eval()
    ranks: List[int] = []
    with no_grad():
        shared = _shared_state(model)
        for sample in samples:
            result = model.predict(sample, *shared)
            ranks.append(result.poi_rank)
    model.train()
    return ranks


def _shared_state(model) -> tuple:
    """Per-evaluation precomputation (embedding tables), when supported."""
    if hasattr(model, "compute_embeddings"):
        return model.compute_embeddings()
    return ()


def evaluate(
    model,
    samples: Sequence[PredictionSample],
    ks: Iterable[int] = DEFAULT_KS,
) -> Dict[str, float]:
    """Metric table (Recall@K / NDCG@K / MRR) over a sample set."""
    return metric_table(collect_ranks(model, samples), ks=ks)


def collect_tile_ranks(model, samples: Sequence[PredictionSample]) -> List[int]:
    """Target *tile* rank per sample (used by the Fig. 11 analysis)."""
    model.eval()
    ranks: List[int] = []
    with no_grad():
        shared = _shared_state(model)
        for sample in samples:
            result = model.predict(sample, *shared)
            ranks.append(result.tile_rank)
    model.train()
    return ranks
