"""The async serving runtime: worker pool + micro-batching + HTTP.

This module turns the offline batched inference path into an online
service.  Three layers, composable and individually testable:

* :class:`InferenceServer` — the runtime.  Owns a
  :class:`~repro.serve.scheduler.MicroBatchScheduler` and a pool of
  worker threads, each serving through its own
  :class:`~repro.serve.predictor.Predictor` replica.  Replicas are
  shallow copies of one checkpoint's model: **parameters (and every
  other read-only table) are shared zero-copy**, while the mutable
  per-request state — the per-user QR-P graph cache — is per-worker,
  so workers never contend on cache eviction.  Because parameters are
  shared objects, :meth:`InferenceServer.reload_weights` on the
  primary propagates to every worker at once, and each worker's
  embedding cache refreshes itself via the existing
  ``weights_version`` token.
* :class:`ServerConfig` — batching/pool/backpressure knobs.
* :class:`HttpFrontend` — a stdlib-only HTTP/JSON front door
  (``/predict``, ``/recommend``, ``/checkin``, ``/healthz``,
  ``/stats``, ``/reload``) on a threading HTTP server; each connection
  thread blocks on its request future while the scheduler coalesces
  concurrent requests into micro-batches.

Stateful serving (``state_store=``): the server owns per-user check-in
state (:mod:`repro.stream`).  ``POST /checkin`` appends one arrival —
rolling sessions at the Δt gap rule and retiring the user's stale QR-P
graph entry from every worker's cache — and a history-less
``POST /predict {"user_id": ...}`` resolves the stored history into an
immutable snapshot sample *before* batching, so stateful and stateless
requests ride the same micro-batching scheduler side by side.

Request identity: a request's result is exactly what a direct
``Predictor.predict_batch([sample])`` would return — micro-batch
composition is invisible because the batched encode is equivalence-
tested against the per-sample loop (PR 2), so *any* batching of
requests yields identical per-request rankings.

Failure containment: a batch that raises fails only its own requests
(their futures carry the exception); the worker survives and keeps
serving.  The front-end therefore validates request payloads *before*
admission (:func:`~repro.serve.protocol.sample_from_json` bounds POI
ids) so a malformed request gets its own 400 instead of poisoning a
batch.
"""

from __future__ import annotations

import copy
import json
import threading
import time
from concurrent.futures import Future, InvalidStateError
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..obs import (
    DriftDetector,
    MetricsRegistry,
    QualityMonitor,
    SlowRing,
    Trace,
    activate,
    maybe_trace,
    merge_histogram_snapshots,
    render_prometheus,
    snapshot_percentile,
    span,
)
from ..stream.events import CheckinEvent, event_from_json
from ..stream.ingest import StreamIngest
from ..stream.state import AppendResult, UserStateStore
from .checkpoint import load_checkpoint, read_checkpoint
from .plans import PlanCache, supports_plans
from .predictor import LATENCY_PERCENTILES, Predictor, ServeStats
from .protocol import PredictorResult, result_to_json, sample_from_json
from .scheduler import MicroBatchScheduler, QueueFullError, SchedulerClosedError


@dataclass(frozen=True)
class ServerConfig:
    """Knobs of the serving runtime.

    ``workers`` threads each run one Predictor replica; requests
    coalesce into batches of up to ``max_batch_size``, flushed at
    latest ``max_wait_ms`` after the oldest member entered the queue.
    ``max_queue`` bounds the admission queue (excess load is rejected,
    not buffered), ``graph_cache_size`` bounds each worker's per-user
    QR-P graph LRU, and ``request_timeout_s`` caps how long a blocking
    ``predict``/HTTP call waits for its future.

    ``compile`` turns captured inference plans on (the default; see
    :mod:`repro.serve.plans`) — one pool-wide :class:`PlanCache` is
    shared by every worker, valid because replicas share parameter
    objects.  ``plan_dtype`` picks the replay precision (``float64``
    keeps ranked lists bit-identical to eager) and ``plan_cache_size``
    bounds the number of live plans.  ``compile=False`` (CLI:
    ``repro serve --no-compile``) is the pure-eager escape hatch.

    ``trace_sample`` is the request-tracing sampling rate (0..1).  The
    default 0 keeps the hot path allocation-free — no Trace or Span
    objects exist anywhere; 0.01 (the CLI serving default) traces 1%
    of requests into the ``/debug/slow`` ring of ``slow_ring_size``
    worst-recent exemplars.

    ``quality_window`` is the sliding window (seconds) of the live
    prequential quality estimators on a *stateful* server (``0``
    disables the monitor entirely); ``quality_topk`` is the ranked-list
    depth each served prediction stores while awaiting its label.
    """

    workers: int = 2
    max_batch_size: int = 16
    max_wait_ms: float = 5.0
    max_queue: int = 256
    graph_cache_size: Optional[int] = 256
    request_timeout_s: float = 60.0
    compile: bool = True
    plan_dtype: str = "float64"
    plan_cache_size: int = 32
    trace_sample: float = 0.0
    slow_ring_size: int = 64
    quality_window: float = 3600.0
    quality_topk: int = 20

    def __post_init__(self):
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if not 0.0 <= self.trace_sample <= 1.0:
            raise ValueError("trace_sample must be within [0, 1]")
        if self.slow_ring_size < 1:
            raise ValueError("slow_ring_size must be >= 1")
        if self.quality_window < 0:
            raise ValueError("quality_window must be >= 0 (0 disables)")
        if self.quality_topk < 1:
            raise ValueError("quality_topk must be >= 1")


class _PooledPredictor(Predictor):
    """A worker Predictor whose embedding cache is pool-wide.

    The shared embedding tables are a pure function of the (shared)
    parameters, so N replicas recomputing and retaining N identical
    copies per ``weights_version`` would waste both the compute (once
    per worker at startup and after every reload) and the residency.
    One version-keyed store, guarded by one lock, serves the pool.
    The plan cache is likewise pool-wide (passed in by the server): a
    plan traced by one worker replays on all of them, each on its own
    per-thread buffers.
    """

    def __init__(
        self, model, graph_cache_size, store, plan_cache=None,
        registry=None, stats_labels=None,
    ):
        super().__init__(
            model,
            graph_cache_size=graph_cache_size,
            compile=plan_cache is not None,
            plan_cache=plan_cache,
            registry=registry,
            stats_labels=stats_labels,
        )
        self._store = store

    def shared_state_versioned(self):
        store = self._store
        with store["lock"]:
            version = self.model.weights_version()
            if store["version"] != version:
                store["state"] = self.model.compute_embeddings()
                store["version"] = version
                self.stats.note_embedding_refresh()
            else:
                self.stats.note_embedding_cache_hit()
            return version, store["state"]

    def invalidate(self):
        with self._store["lock"]:
            self._store["version"] = None
            self._store["state"] = None


def _replicate_model(model):
    """A worker-private view of ``model`` sharing its weights zero-copy.

    A shallow copy shares every attribute object — parameters,
    embedding tables, the tile system, imagery columns — which is
    exactly right: they are read-only during inference, and sharing
    the :class:`~repro.nn.module.Parameter` objects themselves means a
    ``load_state_dict`` on any replica (hot reload goes through the
    primary) is visible to all of them, version bump included.  The
    one piece of genuinely mutable per-request state, the QR-P graph
    cache, is swapped per-replica by the :class:`Predictor` facade
    (``set_graph_cache`` migrates warm entries without touching the
    source cache).
    """
    replica = copy.copy(model)
    # Serving always runs in eval mode; pinning it here (rather than
    # per-request) keeps one worker's predict-time mode save/restore
    # from racing another worker mid-forward into dropout.
    replica.eval()
    return replica


class InferenceServer:
    """Accept single requests, serve them in dynamic micro-batches.

    Lifecycle: construct (optionally via :meth:`from_checkpoint`),
    :meth:`start`, then :meth:`submit`/:meth:`predict` from any number
    of threads; :meth:`stop` drains in-flight work by default.  Also a
    context manager (``with InferenceServer(model) as server:``).
    """

    def __init__(
        self,
        model,
        config: Optional[ServerConfig] = None,
        dataset=None,
        state_store: Optional[UserStateStore] = None,
        ingest: Optional[StreamIngest] = None,
    ):
        self.config = config or ServerConfig()
        self.dataset = dataset
        self._primary = model
        model.eval()
        # Warm lazy shared tables on the primary before replication so
        # workers never race the first-touch builds.
        if hasattr(model, "_poi_leaf_table"):
            model._poi_leaf_table()
        # One registry for the whole runtime: the scheduler, plan cache,
        # worker stats, and stream pipeline all register their
        # instruments here, so /stats and /metrics are two renderings
        # of the same instruments rather than parallel bookkeeping.
        self.registry = MetricsRegistry()
        self.slow_ring = SlowRing(self.config.slow_ring_size)
        self.scheduler = MicroBatchScheduler(
            max_batch_size=self.config.max_batch_size,
            max_wait_ms=self.config.max_wait_ms,
            max_queue=self.config.max_queue,
            registry=self.registry,
        )
        embedding_store = {"lock": threading.Lock(), "version": None, "state": None}
        self.plan_cache: Optional[PlanCache] = None
        if self.config.compile and supports_plans(model):
            self.plan_cache = PlanCache(
                maxsize=self.config.plan_cache_size,
                dtype=self.config.plan_dtype,
                registry=self.registry,
            )
        self.predictors: List[Predictor] = [
            _PooledPredictor(
                _replicate_model(model),
                graph_cache_size=self.config.graph_cache_size,
                store=embedding_store,
                plan_cache=self.plan_cache,
                registry=self.registry,
                stats_labels={"worker": str(index)},
            )
            for index in range(self.config.workers)
        ]
        self._request_stats = ServeStats(
            registry=self.registry, namespace="serve_request"
        )
        self._failed = self.registry.counter(
            "serve_request_failed", "Requests whose batch raised"
        )
        self._in_flight = [0] * self.config.workers  # per-worker batch sizes
        self.registry.gauge(
            "serve_in_flight",
            "Requests currently executing in worker batches",
            fn=lambda: sum(self._in_flight),
        )
        self.registry.gauge(
            "serve_weights_version",
            "Weights generation currently served",
            fn=self._primary.weights_version,
        )
        self._traces_sampled = self.registry.counter(
            "serve_traces_sampled", "Requests that carried a sampled trace"
        )
        self._threads: List[threading.Thread] = []
        self._started = False
        self._stopped = False
        # Stateful serving: the server owns per-user check-in state.
        # The ingest pipeline sees every worker's QR-P graph LRU, so a
        # session rollover retires the stale per-user entry everywhere
        # — and, when the model exposes an incremental QR-P maintainer,
        # pushes the O(session)-updated replacement into each worker
        # cache so the next predict is a hit instead of a rebuild.
        # A caller-supplied ``ingest`` (e.g. repro.cluster's
        # DurableIngest, which logs every acknowledged event) replaces
        # the default pipeline; its store becomes the server's.
        if ingest is not None:
            if state_store is not None and state_store is not ingest.store:
                raise ValueError("pass either state_store or ingest, not both")
            self.state_store = ingest.store
            self.stream = ingest
            for predictor in self.predictors:
                ingest.register_predictor(predictor)
            # the ingest pipeline predates the server (e.g. DurableIngest
            # built during recovery): adopt its instruments so /metrics
            # covers WAL/snapshot gauges and ingest counters too
            self.registry.adopt(ingest.registry)
        else:
            self.state_store = state_store
            self.stream = None
            if state_store is not None:
                self.stream = StreamIngest(state_store, registry=self.registry)
                for predictor in self.predictors:
                    self.stream.register_predictor(predictor)
        # Model-quality observability (stateful servers only — the
        # labels arrive as check-ins): every worker's served batch is
        # recorded by one QualityMonitor, and the ingest observer hook
        # joins each user's next check-in against the pending
        # prediction; the same hook feeds the drift detector's
        # POI/tile sketches.  All instruments live in ``self.registry``
        # so /metrics (and the cluster's shard-merged scrape) carry
        # them with zero extra plumbing.
        self.quality: Optional[QualityMonitor] = None
        self.drift: Optional[DriftDetector] = None
        if self.stream is not None and self.config.quality_window > 0:
            self.quality = QualityMonitor(
                self.registry,
                window_seconds=self.config.quality_window,
                top_k=self.config.quality_topk,
                gap_hours=self.state_store.config.gap_hours,
            )
            tile_system = getattr(model, "tile_system", None)
            tile_of = (
                getattr(tile_system, "leaf_of_poi", None)
                if tile_system is not None
                else None
            )
            self.drift = DriftDetector(self.registry, tile_of=tile_of)
            self.stream.add_observer(self.quality.observe_checkin)
            self.stream.add_observer(self.drift.update)
            for predictor in self.predictors:
                predictor.quality = self.quality

    @classmethod
    def from_checkpoint(
        cls,
        path,
        config: Optional[ServerConfig] = None,
        dataset=None,
        state_store: Optional[UserStateStore] = None,
    ) -> "InferenceServer":
        """Build the runtime straight from a saved checkpoint."""
        loaded = load_checkpoint(path, dataset=dataset)
        return cls(
            loaded.model, config=config, dataset=loaded.dataset, state_store=state_store
        )

    @property
    def num_pois(self) -> Optional[int]:
        return getattr(self._primary, "num_pois", None)

    @property
    def model(self):
        """The primary model (weight reloads go through it)."""
        return self._primary

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "InferenceServer":
        if self._started:
            raise RuntimeError("server already started")
        self._started = True
        for index, predictor in enumerate(self.predictors):
            thread = threading.Thread(
                target=self._worker_loop,
                args=(index, predictor),
                name=f"serve-worker-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        return self

    def stop(self, drain: bool = True, timeout: Optional[float] = 30.0) -> None:
        """Shut down the pool.

        ``drain=True`` serves everything already admitted before the
        workers exit (graceful); ``drain=False`` fails the backlog
        fast.  Idempotent.
        """
        self._stopped = True
        self.scheduler.close(drain=drain)
        for thread in self._threads:
            thread.join(timeout)

    def __enter__(self) -> "InferenceServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop(drain=exc_type is None)

    @property
    def running(self) -> bool:
        return self._started and not self._stopped

    # ------------------------------------------------------------------
    # request path
    # ------------------------------------------------------------------
    def submit(self, sample) -> Future:
        """Queue one :class:`PredictionSample`; non-blocking.

        Raises ``ValueError`` for samples the batched encode would
        reject (empty prefix) *before* they can join — and poison — a
        micro-batch, :class:`QueueFullError` under backpressure, and
        :class:`SchedulerClosedError` during shutdown.  The returned
        future resolves to the request's :class:`PredictorResult`.
        """
        if not sample.prefix:
            raise ValueError("sample needs a non-empty prefix")
        num_pois = self.num_pois
        if num_pois is not None:
            visits = list(sample.prefix)
            for trajectory in sample.history:
                visits.extend(trajectory.visits)
            if any(v.poi_id < 0 or v.poi_id >= num_pois for v in visits):
                raise ValueError(f"sample references POIs outside [0, {num_pois})")
        return self.scheduler.submit(sample)

    def predict(self, sample, timeout: Optional[float] = None) -> PredictorResult:
        """Blocking convenience wrapper: submit and wait for the result.

        On timeout the request is cancelled so a worker does not later
        spend a batch slot computing a result nobody is waiting for.
        """
        future = self.submit(sample)
        try:
            return future.result(
                self.config.request_timeout_s if timeout is None else timeout
            )
        except FutureTimeoutError:
            future.cancel()
            raise

    # ------------------------------------------------------------------
    # stateful request path (the server owns the user's history)
    # ------------------------------------------------------------------
    @property
    def stateful(self) -> bool:
        return self.state_store is not None

    def checkin(self, event: CheckinEvent) -> AppendResult:
        """Ingest one check-in into the server-owned user state.

        Appends to the sharded store, rolls the session at the Δt gap
        boundary, and retires the user's stale QR-P graph entry from
        every worker's cache.  Raises ``RuntimeError`` on a stateless
        server and ``ValueError`` for out-of-order arrivals.
        """
        if self.stream is None:
            raise RuntimeError(
                "this server is stateless; construct it with a state_store "
                "(CLI: repro serve --stateful)"
            )
        result = self.stream.ingest(event)
        # durable ingest: roll the interval snapshot on the serving path,
        # so the WAL stays bounded during long-running serving instead of
        # only compacting at shutdown
        maybe_snapshot = getattr(self.stream, "maybe_snapshot", None)
        if maybe_snapshot is not None:
            maybe_snapshot()
        return result

    def submit_user(self, user_id: int) -> Future:
        """Queue a history-less prediction for a stored user.

        The user's history and open-session prefix are resolved from
        the state store *at submit time* — the sample entering the
        micro-batch is an immutable snapshot, so a check-in ingested
        while the request waits does not shift its result.  Raises
        ``KeyError`` for users the store has never seen.
        """
        if self.state_store is None:
            raise RuntimeError(
                "this server is stateless; construct it with a state_store "
                "(CLI: repro serve --stateful)"
            )
        return self.submit(self.state_store.sample_for(user_id))

    def predict_user(self, user_id: int, timeout: Optional[float] = None) -> PredictorResult:
        """Blocking :meth:`submit_user` (mirrors :meth:`predict`)."""
        future = self.submit_user(user_id)
        try:
            return future.result(
                self.config.request_timeout_s if timeout is None else timeout
            )
        except FutureTimeoutError:
            future.cancel()
            raise

    # ------------------------------------------------------------------
    # worker pool
    # ------------------------------------------------------------------
    def _worker_loop(self, index: int, predictor: Predictor) -> None:
        while True:
            batch = self.scheduler.next_batch()
            if batch is None:  # closed and drained
                return
            samples = [request.sample for request in batch]
            self._in_flight[index] = len(batch)
            # One batch-scoped trace serves every traced member of the
            # batch: the worker's spans (inference, and below it the
            # model's encode/plan-replay/ranking spans) are recorded
            # once and grafted into each member's own trace afterwards,
            # so a request's tree shows the shared work it rode on.
            # Untraced batches skip all of it — no Trace, no spans.
            batch_trace = (
                Trace() if any(r.trace is not None for r in batch) else None
            )
            batch_started = time.monotonic()
            try:
                if batch_trace is not None:
                    with activate(batch_trace):
                        with span(
                            "infer.batch", worker=index, batch_size=len(batch)
                        ):
                            results = predictor.predict_batch(samples)
                else:
                    results = predictor.predict_batch(samples)
            except Exception as error:  # contain the blast radius to this batch
                self._failed.inc(len(batch))
                for request in batch:
                    try:
                        request.future.set_exception(error)
                    except InvalidStateError:
                        pass  # client cancelled; nothing to deliver
                continue
            finally:
                self._in_flight[index] = 0
            completed_at = time.monotonic()
            exported = (
                batch_trace.export_spans() if batch_trace is not None else None
            )
            for request, result in zip(batch, results):
                # record before resolving: a client that wakes on its
                # future must already see itself counted in /stats
                self._request_stats.record_batch(
                    completed_at - request.enqueued_at, 1
                )
                if request.trace is not None:
                    request.trace.add_span(
                        "queue.wait", request.enqueued_at, batch_started
                    )
                    # same process: the batch trace's offsets re-anchor
                    # exactly at its monotonic start
                    request.trace.graft(exported, anchor=batch_trace.started_at)
                try:
                    request.future.set_result(result)
                except InvalidStateError:
                    pass

    # ------------------------------------------------------------------
    # hot weight reload
    # ------------------------------------------------------------------
    def reload_weights(self, source: Union[str, Path, Dict]) -> int:
        """Swap in new weights without restarting the pool.

        ``source`` is a checkpoint path or a ``state_dict`` mapping.
        Parameters are shared objects across all worker replicas, so
        one ``load_state_dict`` on the primary updates every worker;
        the bumped ``weights_version`` then invalidates each worker's
        cached embedding tables on its next request — and every cached
        inference plan, whose keys carry the version (the pool re-traces
        against the new tables on first use).  Extra inference
        state (e.g. MC count tables) is re-applied to every replica
        explicitly, since it lives in plain attributes that shallow
        copies do not share on reassignment.  A batch already running
        during the swap may mix old and new parameters — acceptable
        for incremental refreshes; drain first if you need a hard cut.

        Returns the new ``weights_version``.
        """
        extra = None
        if isinstance(source, (str, Path)):
            meta, params, extra = read_checkpoint(source)
            name = meta.get("model_name")
            expected = getattr(self._primary, "name", None)
            if name != expected:
                raise ValueError(
                    f"checkpoint holds weights for {name!r}, server runs {expected!r}"
                )
        else:
            params = dict(source)
        self._primary.load_state_dict(params)
        if extra:
            self._primary.load_extra_state(extra)
            for predictor in self.predictors:
                predictor.model.load_extra_state(extra)
        return self._primary.weights_version()

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def stats(self) -> Dict:
        """One JSON-ready snapshot of the whole runtime.

        ``scheduler`` covers admission (``queue_depth``, rejections),
        ``batches`` the pooled per-batch execution stats across
        workers, ``workers_detail`` each worker's in-flight batch size
        and lifetime counters, and ``requests`` end-to-end request
        latency (enqueue to completion, i.e. queueing + batching delay
        + inference).  ``queue_depth`` + per-worker ``in_flight`` are
        the backpressure gauges: watching them climb is how operators
        (and the replay bench) see saturation building *before* the
        bounded queue starts returning 429s.  Stateful servers add a
        ``stream`` section (store occupancy + ingest counters), and
        ``plans`` reports the pool-wide plan cache (trace/hit/miss/
        fallback counters plus per-plan step and buffer sizes) or
        ``{"enabled": false}`` when serving eagerly.
        """
        batch_requests = batch_count = refreshes = hits = 0
        latency_snapshots: List[Dict] = []
        workers_detail: List[Dict] = []
        for index, predictor in enumerate(self.predictors):
            stats = predictor.stats
            latency_snapshots.append(stats.latency.snapshot())
            batch_requests += stats.requests
            batch_count += stats.batches
            refreshes += stats.embedding_refreshes
            hits += stats.embedding_cache_hits
            workers_detail.append(
                {
                    "worker": index,
                    "in_flight": self._in_flight[index],
                    "requests": stats.requests,
                    "batches": stats.batches,
                }
            )
        # per-worker histograms sum bucket-wise into one pool-wide
        # latency distribution — the merge the old pooled-list window
        # approximated with O(requests) memory
        pooled = merge_histogram_snapshots(latency_snapshots)
        request_stats = self._request_stats.as_dict()
        scheduler_stats = self.scheduler.stats()
        failed = int(self._failed.value)
        out = {
            "running": self.running,
            "workers": len(self.predictors),
            "weights_version": self._primary.weights_version(),
            "queue_depth": scheduler_stats["queue_depth"],
            "in_flight": sum(w["in_flight"] for w in workers_detail),
            "workers_detail": workers_detail,
            "scheduler": scheduler_stats,
            "batches": {
                "count": batch_count,
                "requests": batch_requests,
                "mean_size": batch_requests / batch_count if batch_count else 0.0,
                "embedding_refreshes": refreshes,
                "embedding_cache_hits": hits,
                **{
                    f"p{p}_ms": 1000.0 * snapshot_percentile(pooled, p)
                    for p in LATENCY_PERCENTILES
                },
            },
            "requests": {
                "completed": request_stats["requests"],
                "failed": failed,
                "rejected": scheduler_stats["rejected"],
                "mean_latency_ms": request_stats["mean_latency_ms"],
                **{
                    key: request_stats[key]
                    for key in (f"p{p}_ms" for p in LATENCY_PERCENTILES)
                },
            },
        }
        out["plans"] = (
            self.plan_cache.stats() if self.plan_cache is not None else {"enabled": False}
        )
        if self.stream is not None:
            out["stream"] = self.stream.stats()
        if self.quality is not None:
            out["quality"] = {
                "enabled": True,
                "pending": self.quality.pending_count(),
                "joins": sum(self.quality.summary()["joins"].values()),
            }
        out["tracing"] = {
            "sample_rate": self.config.trace_sample,
            "sampled": int(self._traces_sampled.value),
            "slow_ring": len(self.slow_ring),
        }
        return out

    def metrics_text(self) -> str:
        """The Prometheus text exposition ``GET /metrics`` serves."""
        return render_prometheus(self.registry.snapshot())

    def quality_report(self) -> Dict:
        """The ``GET /quality`` JSON: prequential accuracy + drift.

        ``{"enabled": false}`` on a stateless server (no labels can
        ever arrive) or when ``quality_window=0`` switched the monitor
        off.  Per-stratum blocks carry raw windowed sums alongside the
        ratios, which is what lets the cluster router merge shard
        reports by addition.
        """
        if self.quality is None:
            return {"enabled": False}
        report = self.quality.summary()
        report["drift"] = (
            self.drift.summary() if self.drift is not None else {"enabled": False}
        )
        if self.state_store is not None:
            report["store_strata"] = self.state_store.strata_counts()
        return report

    def slow_requests(self, n: int = 10) -> List[Dict]:
        """The ``n`` worst recent traced requests as span trees."""
        return self.slow_ring.slow(n)


# ----------------------------------------------------------------------
# HTTP front-end (stdlib only)
# ----------------------------------------------------------------------
def _make_handler(server: InferenceServer):
    """A request-handler class bound to one :class:`InferenceServer`."""

    class Handler(BaseHTTPRequestHandler):
        server_version = "repro-serve/1.0"
        protocol_version = "HTTP/1.1"

        # the runtime's stats cover observability; per-request access
        # logging on stderr would just add noise to benchmarks
        def log_message(self, format, *args):
            pass

        def _send_json(self, status: int, payload: Dict) -> None:
            body = json.dumps(payload).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _send_text(self, status: int, text: str, content_type: str) -> None:
            body = text.encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _read_json(self) -> Dict:
            length = int(self.headers.get("Content-Length") or 0)
            raw = self.rfile.read(length) if length else b""
            if not raw:
                raise ValueError("empty request body")
            try:
                payload = json.loads(raw)
            except json.JSONDecodeError as error:
                raise ValueError(f"invalid JSON: {error}") from error
            if not isinstance(payload, dict):
                raise ValueError("request body must be a JSON object")
            return payload

        def do_GET(self):
            if self.path == "/healthz":
                self._send_json(
                    200,
                    {
                        "status": "ok" if server.running else "stopping",
                        "workers": len(server.predictors),
                        "weights_version": server.model.weights_version(),
                    },
                )
            elif self.path == "/stats":
                self._send_json(200, server.stats())
            elif self.path == "/metrics":
                self._send_text(
                    200, server.metrics_text(), "text/plain; version=0.0.4"
                )
            elif self.path == "/quality":
                self._send_json(200, server.quality_report())
            elif self.path.startswith("/debug/slow"):
                self._send_json(200, {"slow": server.slow_requests(self._slow_n())})
            else:
                self._send_json(404, {"error": f"unknown path {self.path!r}"})

        def _slow_n(self) -> int:
            # /debug/slow?n=25 — bad or absent n falls back to 10
            _, _, query = self.path.partition("?")
            for part in query.split("&"):
                key, _, value = part.partition("=")
                if key == "n" and value.isdigit():
                    return max(1, min(int(value), server.slow_ring.capacity))
            return 10

        def do_POST(self):
            if self.path not in ("/predict", "/recommend", "/reload", "/checkin"):
                self._send_json(404, {"error": f"unknown path {self.path!r}"})
                return
            # Sampled request tracing: the trace is thread-local for
            # the rest of this handler (submit captures it onto the
            # ServeRequest; checkin's WAL append sees it directly) and
            # lands in the slow ring once the response is written.
            trace = maybe_trace(server.config.trace_sample)
            try:
                with activate(trace):
                    self._dispatch_post()
            finally:
                if trace is not None:
                    server._traces_sampled.inc()
                    server.slow_ring.offer(trace)

        def _dispatch_post(self):
            with span("http.parse", path=self.path):
                try:
                    payload = self._read_json()
                except ValueError as error:
                    self._send_json(400, {"error": str(error)})
                    return
            if self.path == "/reload":
                self._reload(payload)
            elif self.path == "/checkin":
                self._checkin(payload)
            else:
                self._infer(payload, recommend=self.path == "/recommend")

        def _checkin(self, payload: Dict) -> None:
            if not server.stateful:
                self._send_json(
                    400,
                    {"error": "this server is stateless; start it with "
                              "repro serve --stateful to accept check-ins"},
                )
                return
            try:
                with span("validate"):
                    event = event_from_json(payload, num_pois=server.num_pois)
            except ValueError as error:
                self._send_json(400, {"error": str(error)})
                return
            try:
                result = server.checkin(event)
            except ValueError as error:
                # out-of-order arrival: the client's clock conflicts
                # with already-ingested state, not with the schema
                self._send_json(409, {"error": str(error)})
                return
            self._send_json(200, result.as_dict())

        def _stored_sample(self, payload: Dict):
            """Resolve a history-less request body against the store.

            Returns ``(sample, None)`` or ``(None, handled)`` after
            sending the error response.
            """
            if not server.stateful:
                self._send_json(
                    400,
                    {"error": "history-less predict needs a stateful server; "
                              "start it with repro serve --stateful or ship "
                              "a 'prefix' with the request"},
                )
                return None, True
            user_id = payload.get("user_id")
            if isinstance(user_id, bool) or not isinstance(user_id, int):
                self._send_json(400, {"error": "user_id must be an integer"})
                return None, True
            try:
                return server.state_store.sample_for(user_id), None
            except KeyError:
                self._send_json(
                    404, {"error": f"no check-in state for user {user_id}"}
                )
                return None, True

        def _infer(self, payload: Dict, recommend: bool) -> None:
            k = payload.get("k", 10)
            if isinstance(k, bool) or not isinstance(k, int) or k < 1:
                self._send_json(400, {"error": "k must be a positive integer"})
                return
            # classify the *as-shipped* body before /recommend drops the
            # target, so both endpoints route a given body identically
            historyless = not any(
                key in payload for key in ("prefix", "history", "target")
            )
            if recommend:
                payload = dict(payload)
                payload.pop("target", None)  # recommendations carry no truth
            if historyless:
                # history-less form: {"user_id": ...} with no shipped
                # trajectory data at all — the server resolves the
                # stored history/prefix before batching.  A body that
                # ships history or a target but no prefix is a broken
                # *stateless* request and must keep its 400; silently
                # serving it from stored state would mask the bug.
                with span("validate", historyless=True):
                    sample, handled = self._stored_sample(payload)
                if handled:
                    return
            else:
                try:
                    with span("validate"):
                        sample = sample_from_json(payload, num_pois=server.num_pois)
                except ValueError as error:
                    self._send_json(400, {"error": str(error)})
                    return
            try:
                future = server.submit(sample)
            except QueueFullError as error:
                self._send_json(
                    429,
                    {"error": str(error), **server.scheduler.stats()},
                )
                return
            except SchedulerClosedError as error:
                self._send_json(503, {"error": str(error)})
                return
            try:
                result = future.result(server.config.request_timeout_s)
            except FutureTimeoutError:
                future.cancel()  # still queued -> don't waste a worker on it
                self._send_json(
                    504,
                    {"error": f"request timed out after {server.config.request_timeout_s}s"},
                )
                return
            except Exception as error:  # the batch raised
                self._send_json(500, {"error": str(error)})
                return
            body = result_to_json(result, k=k)
            if recommend:
                body = {
                    "user_id": sample.user_id,
                    "recommendations": body["top_pois"],
                    "num_pois": body["num_pois"],
                }
            self._send_json(200, body)

        def _reload(self, payload: Dict) -> None:
            path = payload.get("checkpoint")
            if not isinstance(path, str) or not path:
                self._send_json(400, {"error": "reload needs a 'checkpoint' path"})
                return
            try:
                version = server.reload_weights(path)
            except FileNotFoundError:
                self._send_json(400, {"error": f"checkpoint not found: {path}"})
                return
            except Exception as error:
                # not just ValueError/KeyError: a corrupt or non-.npz
                # file surfaces as BadZipFile/OSError from np.load, and
                # the client must get a 400, not a dropped connection
                self._send_json(400, {"error": f"{type(error).__name__}: {error}"})
                return
            self._send_json(200, {"weights_version": version})

    return Handler


class HttpFrontend:
    """Serve an :class:`InferenceServer` over HTTP/JSON.

    Endpoints: ``POST /predict`` and ``POST /recommend`` (see
    :func:`~repro.serve.protocol.sample_from_json` for the body
    schema; on a stateful server a body without ``prefix`` is the
    history-less form ``{"user_id": ...}`` served from the state
    store), ``POST /checkin`` (``{"user_id", "poi_id", "timestamp"}``,
    stateful servers only), ``POST /reload`` (``{"checkpoint": path}``),
    ``GET /healthz``, ``GET /stats``, ``GET /metrics`` (Prometheus
    text), ``GET /quality`` (live prequential accuracy by cold-start
    stratum plus drift gauges; stateful servers) and
    ``GET /debug/slow?n=10`` (the worst recent traced
    requests as span trees).  A threading HTTP server
    gives each connection its own thread; those threads block on their
    request futures while the scheduler coalesces them into
    micro-batches.  ``port=0`` binds an ephemeral port (tests).
    """

    def __init__(self, server: InferenceServer, host: str = "127.0.0.1", port: int = 8151):
        self.inference = server
        self._httpd = ThreadingHTTPServer((host, port), _make_handler(server))
        self._httpd.daemon_threads = True
        self.host, self.port = self._httpd.server_address[:2]
        self._thread: Optional[threading.Thread] = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "HttpFrontend":
        if self._thread is not None:
            raise RuntimeError("HTTP front-end already started")
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="serve-http", daemon=True
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Run in the calling thread until interrupted (CLI mode)."""
        self._httpd.serve_forever()

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(5.0)
            self._thread = None

    def __enter__(self) -> "HttpFrontend":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
