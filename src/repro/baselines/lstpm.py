"""LSTPM baseline [Sun et al., AAAI 2020; ref 7].

Long- and Short-Term Preference Modeling: a *non-local* long-term
module attends over per-trajectory history encodings weighted by their
similarity to the current context, and a short-term module pairs a
plain LSTM with a *geo-dilated* LSTM that skips spatially redundant
steps.  Both defining mechanisms are kept.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor, concat, softmax
from ..data.trajectory import PredictionSample
from ..nn import LSTM, DilatedLSTM, Linear
from ..utils.rng import default_rng
from .base import NextPOIBaseline, SequenceEmbedder

_MAX_HISTORY_TRAJECTORIES = 12


class LSTPM(NextPOIBaseline):
    name = "LSTPM"

    def __init__(self, num_pois: int, dim: int = 64, dilation: int = 2, rng=None):
        super().__init__(num_pois, dim, rng=rng)
        rng = rng or default_rng()
        self.embedder = SequenceEmbedder(num_pois, dim, rng=rng)
        self.short_term = LSTM(dim, dim, rng=rng)
        self.geo_dilated = DilatedLSTM(dim, dim, dilation=dilation, rng=rng)
        self.trajectory_encoder = LSTM(dim, dim, rng=rng)
        self.combine = Linear(3 * dim, dim, rng=rng)
        self.head = Linear(dim, num_pois, rng=rng)

    def score(self, sample: PredictionSample) -> Tensor:
        sequence = self.embedder(sample)
        _, (short, _) = self.short_term(sequence)
        dilated = self.geo_dilated(sequence)

        history = sample.history[-_MAX_HISTORY_TRAJECTORIES:]
        if history:
            encodings = []
            for trajectory in history:
                embedded = self.embedder(trajectory.visits)
                _, (state, _) = self.trajectory_encoder(embedded)
                encodings.append(state)
            from ..autograd import stack

            stacked = stack(encodings, axis=0)  # (H, dim)
            # non-local weighting: similarity of each past trajectory to
            # the current short-term state
            weights = softmax((stacked @ short) * (1.0 / np.sqrt(self.dim)), axis=0)
            long_term = (stacked * weights.reshape(-1, 1)).sum(axis=0)
        else:
            long_term = short
        merged = self.combine(concat([short, dilated, long_term], axis=0)).relu()
        return self.head(merged)
