"""Trajectory windowing and prediction samples.

The paper (Sec. II-A) cuts each user's check-in stream into disjoint
trajectories whenever the gap between consecutive check-ins is at least
Δt = 72 hours.  A *prediction sample* is then: the historical
trajectories S_◁i, a prefix of the current trajectory S_Ti[1:j-1], and
the ground-truth next POI p_j.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

from .checkin import Checkin

DEFAULT_GAP_HOURS = 72.0


@dataclass(frozen=True)
class Visit:
    """One (POI, timestamp) record inside a trajectory."""

    poi_id: int
    timestamp: float


@dataclass
class Trajectory:
    """A maximal run of visits with no internal gap >= Δt."""

    user_id: int
    visits: List[Visit]

    def __len__(self) -> int:
        return len(self.visits)

    def __iter__(self) -> Iterator[Visit]:
        return iter(self.visits)

    @property
    def poi_ids(self) -> List[int]:
        return [v.poi_id for v in self.visits]

    @property
    def timestamps(self) -> List[float]:
        return [v.timestamp for v in self.visits]

    @property
    def start(self) -> float:
        return self.visits[0].timestamp

    @property
    def end(self) -> float:
        return self.visits[-1].timestamp


def split_into_trajectories(
    checkins: Sequence[Checkin], gap_hours: float = DEFAULT_GAP_HOURS
) -> List[Trajectory]:
    """Split one user's time-sorted check-ins at gaps >= ``gap_hours``."""
    if not checkins:
        return []
    user = checkins[0].user_id
    trajectories: List[Trajectory] = []
    current: List[Visit] = [Visit(checkins[0].poi_id, checkins[0].timestamp)]
    for prev, record in zip(checkins, checkins[1:]):
        if record.user_id != user:
            raise ValueError("split_into_trajectories expects a single user's records")
        if record.timestamp < prev.timestamp:
            raise ValueError("check-ins must be sorted by time")
        if record.timestamp - prev.timestamp >= gap_hours:
            trajectories.append(Trajectory(user_id=user, visits=current))
            current = []
        current.append(Visit(record.poi_id, record.timestamp))
    trajectories.append(Trajectory(user_id=user, visits=current))
    return trajectories


@dataclass
class PredictionSample:
    """One next-POI prediction instance.

    ``history`` are the user's complete earlier trajectories (the input
    to QR-P graph construction); ``prefix`` is the visited part of the
    current trajectory; ``target`` is the POI actually visited next —
    ``None`` for live serving requests that carry no ground truth
    (``repro.serve.Predictor.recommend``).  ``history_key`` is the
    hashable QR-P graph-cache key: dataset samples use
    ``(user, current-trajectory index)`` 2-tuples, while live serving
    uses namespaced ``("serve", user, history-digest)`` 3-tuples so a
    request can never alias a training-time cache entry.
    """

    user_id: int
    history: List[Trajectory]
    prefix: List[Visit]
    target: Optional[Visit]
    history_key: Tuple = field(default=(0, 0))

    @property
    def prefix_poi_ids(self) -> List[int]:
        return [v.poi_id for v in self.prefix]


def samples_from_trajectories(
    trajectories: List[Trajectory],
    min_prefix: int = 1,
    last_only: bool = False,
) -> List[PredictionSample]:
    """Expand one user's trajectory sequence into prediction samples.

    With ``last_only`` each trajectory contributes a single sample
    (predict its final visit); otherwise every position after
    ``min_prefix`` becomes a target, the common next-POI protocol.
    """
    samples: List[PredictionSample] = []
    for index, trajectory in enumerate(trajectories):
        if len(trajectory) < min_prefix + 1:
            continue
        history = trajectories[:index]
        positions = (
            [len(trajectory) - 1]
            if last_only
            else range(min_prefix, len(trajectory))
        )
        for j in positions:
            samples.append(
                PredictionSample(
                    user_id=trajectory.user_id,
                    history=history,
                    prefix=trajectory.visits[:j],
                    target=trajectory.visits[j],
                    history_key=(trajectory.user_id, index),
                )
            )
    return samples


def concat_history(history: List[Trajectory]) -> List[Visit]:
    """Time-ordered concatenation of historical trajectories.

    This is the "whole trajectory sequence" the paper feeds to QR-P
    graph construction (phase 1 discussion).
    """
    visits: List[Visit] = []
    for trajectory in sorted(history, key=lambda t: t.start):
        visits.extend(trajectory.visits)
    return visits
