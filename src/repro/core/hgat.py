"""Heterogeneous graph attention (paper Sec. IV-C, Eq. 6).

Per edge type k the layer computes GAT-style attention

    A_k[i, j] = softmax_j( LeakyReLU( a_k [W_k h_i || W_k h_j] ) )

and node i's update sums attention-weighted messages over all edge
types:  h_i^{l+1} = sigma( sum_k sum_{j in N_k(i)} A_k[i,j] W_k h_j ).

QR-P graphs are small (tens of nodes), so attention is computed as a
dense masked matrix per edge type — simple and exactly Eq. 6.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..autograd import Tensor, masked_fill, softmax
from ..graphs import EDGE_TYPES, QRPGraph, attention_masks
from ..nn import Linear, Module, ModuleList
from ..nn.module import Parameter
from ..nn import init as nn_init
from ..utils.rng import default_rng

_NEG = -1e9


class HGATLayer(Module):
    """One round of Eq. 6 aggregation."""

    def __init__(self, dim: int, rng=None):
        super().__init__()
        rng = rng or default_rng()
        self.dim = dim
        self.w = {k: Linear(dim, dim, bias=False, rng=rng) for k in EDGE_TYPES}
        # a_k split into destination/source halves (standard GAT trick:
        # a.[Wh_i || Wh_j] = a_dst.Wh_i + a_src.Wh_j).
        self.a_dst = {k: Parameter(nn_init.xavier_uniform((dim,), rng)) for k in EDGE_TYPES}
        self.a_src = {k: Parameter(nn_init.xavier_uniform((dim,), rng)) for k in EDGE_TYPES}

    def forward(self, h: Tensor, masks: Dict[str, np.ndarray]) -> Tensor:
        """``masks[k][i, j]`` is True when j is NOT a k-neighbour of i."""
        n = h.shape[0]
        total = None
        for kind in EDGE_TYPES:
            mask = masks[kind]
            has_neighbors = (~mask).any(axis=1)  # (n,)
            if not has_neighbors.any():
                continue
            wh = self.w[kind](h)  # (n, dim)
            score_dst = wh @ self.a_dst[kind]  # (n,)
            score_src = wh @ self.a_src[kind]  # (n,)
            scores = (
                score_dst.reshape(n, 1) + score_src.reshape(1, n)
            ).leaky_relu(0.2)
            attention = softmax(masked_fill(scores, mask, _NEG), axis=1)
            # Rows with zero k-neighbours got a uniform distribution over
            # the -1e9 fills; zero them out entirely.
            attention = attention * Tensor(has_neighbors[:, None].astype(np.float64))
            messages = attention @ wh
            total = messages if total is None else total + messages
        if total is None:
            return h
        return total.tanh()


class HGATEncoder(Module):
    """The module M_G: n stacked HGAT layers over a QR-P graph."""

    def __init__(self, dim: int, num_layers: int = 2, rng=None):
        super().__init__()
        rng = rng or default_rng()
        self.layers = ModuleList([HGATLayer(dim, rng=rng) for _ in range(num_layers)])

    @staticmethod
    def build_masks(qrp: QRPGraph) -> Dict[str, np.ndarray]:
        """Dense blocked-attention masks per edge type.

        Delegates to :func:`repro.graphs.attention_masks` — one
        advanced-indexing assignment per edge type instead of a Python
        per-edge loop — so the serve path, the incremental maintainer,
        and the differential harness all share one mask constructor.
        """
        return attention_masks(qrp)

    def forward(self, qrp: QRPGraph, h0: Tensor, masks: Dict[str, np.ndarray] = None) -> Tensor:
        """Run all rounds; ``h0`` rows follow the graph's local indexing.

        ``masks`` may be passed in to reuse a cached
        :meth:`build_masks` result across epochs (the masks depend only
        on the graph, not on parameters).
        """
        if masks is None:
            masks = self.build_masks(qrp)
        h = h0
        for layer in self.layers:
            h = layer(h, masks)
        return h

    def forward_packed(
        self, masks_list: List[Dict[str, np.ndarray]], h0: Tensor, sizes: List[int]
    ) -> Tensor:
        """One pass over several graphs packed block-diagonally.

        ``h0`` stacks the graphs' initial node embeddings (graph i's
        rows occupy ``[offsets[i], offsets[i+1])``); ``masks_list[i]``
        is graph i's :meth:`build_masks` result.  Off-diagonal blocks
        stay fully masked, so no attention crosses graph boundaries
        and row values match running :meth:`forward` per graph — this
        is the standard disjoint-union batching trick for heterogeneous
        graphs, and it collapses a Python-loop of per-graph passes into
        one dense pass per layer (the per-training-batch hot path).

        Callers must not pack edge-free graphs: per-graph
        :meth:`forward` short-circuits them to the identity, while a
        packed layer sums (empty) messages for every row and would
        zero them out.  ``TSPNRA._history_knowledge_batch`` filters
        such graphs (reachable via the ``drop_edge_type`` ablations)
        before packing.
        """
        if len(masks_list) != len(sizes):
            raise ValueError("masks_list and sizes disagree")
        offsets = np.concatenate([[0], np.cumsum(sizes)])
        n = int(offsets[-1])
        if h0.shape[0] != n:
            raise ValueError(f"h0 has {h0.shape[0]} rows, sizes sum to {n}")
        masks = {kind: np.ones((n, n), dtype=bool) for kind in EDGE_TYPES}
        for i, graph_masks in enumerate(masks_list):
            lo, hi = int(offsets[i]), int(offsets[i + 1])
            for kind in EDGE_TYPES:
                masks[kind][lo:hi, lo:hi] = graph_masks[kind]
        h = h0
        for layer in self.layers:
            h = layer(h, masks)
        return h
