"""Geometric primitives: bounding boxes and distances."""

from .bbox import BoundingBox
from .distance import equirectangular_km, euclidean, haversine_km

__all__ = ["BoundingBox", "equirectangular_km", "euclidean", "haversine_km"]
