"""Serving throughput and latency percentiles — the BENCH_serve harness.

Seeds the BENCH trajectory for the ``repro.serve`` subsystem.  Three
legs, slowest to fastest:

* **uncached** — the legacy research loop (``compute_embeddings()``
  recomputed per request);
* **cached** — shared embeddings computed once, per-sample ``predict``
  loop (the pre-vectorisation ``Predictor`` behaviour);
* **batched** — the vectorised ``predict_batch`` path: padded-and-
  masked batch encode plus single-matmul tile/POI ranking, measured
  per batch so p50/p95/p99 latencies are meaningful.

Alongside the human-readable table the run emits
``benchmarks/results/BENCH_serve.json`` — the machine-readable BENCH
trajectory point (samples/sec per leg, batched-vs-per-sample speedup,
latency percentiles).
"""

import json
from pathlib import Path

import pytest

from repro.experiments import format_table, prepare, run_one
from repro.serve import compare_throughput

pytestmark = pytest.mark.slow

RESULTS_DIR = Path(__file__).parent / "results"
BATCH_SIZE = 16


def bench_serve_throughput(benchmark, profile, save_report):
    small = profile.smaller(0.5)
    data = prepare("nyc", small)
    _, model = run_one("TSPN-RA", data, small)
    test = data.splits.test[:80]

    report = benchmark.pedantic(
        compare_throughput,
        args=(model, test),
        kwargs={"batch_size": BATCH_SIZE},
        rounds=1,
        iterations=1,
    )

    rows = [[key, f"{value:10.2f}"] for key, value in report.items()]
    save_report(
        "serve_throughput",
        format_table(
            ["Metric", "Value"],
            rows,
            title="Serving throughput — uncached vs cached vs batched (NYC)",
        ),
    )

    RESULTS_DIR.mkdir(exist_ok=True)
    trajectory_point = {
        "bench": "serve",
        "dataset": "nyc",
        "batch_size": BATCH_SIZE,
        **{key: round(value, 4) for key, value in report.items()},
    }
    out = RESULTS_DIR / "BENCH_serve.json"
    out.write_text(json.dumps(trajectory_point, indent=2) + "\n")
    print(f"[BENCH trajectory point saved to {out}]")

    assert report["speedup"] > 1.0, report
    assert report["batched_speedup"] > 1.0, report
