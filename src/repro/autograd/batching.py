"""Differentiable batching primitives: pad, stack and gather.

The vectorised inference path (PR 2) assembled its padded batches from
detached ``.data`` arrays, which made ``(batch, seq, dim)`` encodes
cheap but cut them off from the autograd graph — training had to fall
back to per-sample forward passes.  The ops here close that gap: they
build right-padded batch tensors *on* the graph, so one padded
forward/backward trains a whole mini-batch.

Design notes
------------
* ``pad_stack`` is the adjoint-of-slicing op: forward right-pads each
  variable-length row block and stacks; backward slices each row's
  gradient back out.  Padded positions receive no gradient by
  construction (their adjoint is the empty slice).
* ``gather_last`` picks one position per batch row (the "last real
  step" gather used by RNN trunks and the fusion output).  Its
  backward scatters into a zero tensor; the target positions are
  unique per row, so no accumulation-order ambiguity exists.
* Both ops respect :func:`~repro.autograd.tensor.no_grad`: under the
  inference context they build plain constant tensors, exactly like
  the detached helpers they replace.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from .dtype import get_default_dtype
from .tensor import Tensor


def pad_stack(
    rows: Sequence[Optional[Tensor]],
    width: int,
    pad_to: Optional[int] = None,
) -> Tensor:
    """Right-pad variable-length row blocks and stack: ``(B, H_max, width)``.

    ``rows[i]`` is a ``(H_i, width)`` tensor or ``None`` (treated as
    ``H_i = 0``; its output row is all padding).  ``pad_to`` overrides
    the padded length (default: ``max(H_i)``).  Gradients flow back to
    each row's real positions only — the padded tail has an empty
    adjoint.  Callers build the matching key-padding mask from the row
    lengths (see :func:`repro.nn.key_padding_mask`).
    """
    counts = [0 if r is None else r.shape[0] for r in rows]
    h_max = max(counts) if pad_to is None else pad_to
    if pad_to is not None and max(counts, default=0) > pad_to:
        raise ValueError(f"pad_to={pad_to} smaller than longest row {max(counts)}")
    dtype = next((r.dtype for r in rows if r is not None), get_default_dtype())
    data = np.zeros((len(rows), h_max, width), dtype=dtype)
    parents: List[Tensor] = []
    grad_fns = []
    for i, (row, count) in enumerate(zip(rows, counts)):
        if count == 0:
            continue
        if row.shape[1] != width:
            raise ValueError(f"row {i} has width {row.shape[1]}, expected {width}")
        data[i, :count] = row.data

        def make_grad_fn(index: int, length: int):
            def grad_fn(g: np.ndarray) -> np.ndarray:
                return g[index, :length]

            return grad_fn

        parents.append(row)
        grad_fns.append(make_grad_fn(i, count))
    return Tensor._make(data, parents, grad_fns, "pad_stack")


def gather_at(sequence: Tensor, positions: Sequence[int]) -> Tensor:
    """Pick position ``positions[b]`` from each row of ``(B, L, ...)``.

    Backward scatters the upstream gradient into a zero array; each
    ``(b, positions[b])`` slot is distinct, so the scatter is a plain
    assignment.  ``positions`` is consumed *as given* (a traced plan
    takes it as a feed), which is why :func:`gather_last` delegates
    here instead of deriving ``lengths - 1`` inside the op.
    """
    positions = np.asarray(positions, dtype=np.int64)
    if positions.min() < 0:
        raise ValueError("gather_at needs positions >= 0")
    if positions.max() >= sequence.shape[1]:
        raise ValueError("position exceeds the padded sequence dimension")
    batch_index = np.arange(sequence.shape[0])
    data = sequence.data[batch_index, positions]
    shape = sequence.shape

    def grad_fn(g: np.ndarray) -> np.ndarray:
        out = np.zeros(shape, dtype=g.dtype)
        out[batch_index, positions] = g
        return out

    return Tensor._make(
        data, (sequence,), (grad_fn,), "gather_at",
        kernel=lambda out, a, pos: a[batch_index, pos], extra=(positions,),
    )


def gather_last(sequence: Tensor, lengths: Sequence[int]) -> Tensor:
    """Pick position ``lengths[b] - 1`` from each row of ``(B, L, ...)``.

    The standard "output at the real last step" gather for right-padded
    batches.
    """
    lengths = np.asarray(lengths, dtype=np.int64)
    if lengths.min() < 1:
        raise ValueError("gather_last needs lengths >= 1")
    if lengths.max() > sequence.shape[1]:
        raise ValueError("length exceeds the padded sequence dimension")
    return gather_at(sequence, lengths - 1)
