"""POI records and the POI set P = {p_1, ..., p_|P|} (paper Sec. II-A)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class POI:
    """A point of interest: ``(id, loc, cate)`` as in the paper."""

    poi_id: int
    x: float
    y: float
    category: int

    @property
    def loc(self) -> Tuple[float, float]:
        return (self.x, self.y)


class POISet:
    """Column-oriented POI storage with id/category/location access.

    POI ids are dense integers ``0..n-1`` (the synthetic generator emits
    them that way; loaders for external data must re-index).
    """

    def __init__(
        self,
        xy: np.ndarray,
        categories: np.ndarray,
        category_names: Optional[Sequence[str]] = None,
    ):
        xy = np.asarray(xy, dtype=np.float64)
        categories = np.asarray(categories, dtype=np.int64)
        if xy.ndim != 2 or xy.shape[1] != 2:
            raise ValueError("xy must have shape (N, 2)")
        if len(categories) != len(xy):
            raise ValueError("categories length mismatch")
        self.xy = xy
        self.categories = categories
        if category_names is None:
            category_names = [f"category_{i}" for i in range(int(categories.max()) + 1 if len(categories) else 0)]
        self.category_names = list(category_names)

    def __len__(self) -> int:
        return len(self.xy)

    def __getitem__(self, poi_id: int) -> POI:
        x, y = self.xy[poi_id]
        return POI(poi_id=poi_id, x=float(x), y=float(y), category=int(self.categories[poi_id]))

    @property
    def num_categories(self) -> int:
        return len(self.category_names)

    def location_of(self, poi_id: int) -> Tuple[float, float]:
        x, y = self.xy[poi_id]
        return float(x), float(y)

    def category_of(self, poi_id: int) -> int:
        return int(self.categories[poi_id])

    def pois_with_category(self, category: int) -> np.ndarray:
        return np.nonzero(self.categories == category)[0]

    def nearest(self, x: float, y: float, k: int = 1, exclude: Optional[int] = None) -> List[int]:
        """Ids of the k nearest POIs to (x, y) by planar distance."""
        d2 = (self.xy[:, 0] - x) ** 2 + (self.xy[:, 1] - y) ** 2
        if exclude is not None:
            d2 = d2.copy()
            d2[exclude] = np.inf
        order = np.argsort(d2)
        return [int(i) for i in order[:k]]

    def within(self, bbox) -> np.ndarray:
        """Ids of POIs inside a bounding box (closed containment)."""
        m = (
            (self.xy[:, 0] >= bbox.min_x)
            & (self.xy[:, 0] <= bbox.max_x)
            & (self.xy[:, 1] >= bbox.min_y)
            & (self.xy[:, 1] <= bbox.max_y)
        )
        return np.nonzero(m)[0]
