"""Synthetic location-based social network generator.

Replaces the Foursquare / Weeplaces check-in datasets (see DESIGN.md,
Section 2).  The generator manufactures exactly the regularities the
paper's model family feeds on:

* **non-uniform POI density** — POIs are placed by rejection sampling
  against the land-use map, so commercial cores are dense and rural
  areas sparse (the imbalance that motivates the quad-tree);
* **repeat behaviour** — each user owns a favourite set around home
  and work anchors and returns to it most of the time (the signal
  recurrent/attention baselines exploit);
* **spatial coherence** — exploration picks nearby POIs with distance
  decay (the signal tile-level prediction exploits);
* **temporal rhythm** — categories have hour-of-day affinities
  (the signal the 48-slot temporal encoder exploits);
* **environmental correlation** — category semantics follow land use,
  which is what the rendered imagery depicts (the signal Me1 exploits).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy.spatial import cKDTree

from ..geo import BoundingBox
from ..imagery import LandUse, LandUseMap
from ..roadnet import RoadNetwork
from .checkin import Checkin
from .poi import POISet

# Acceptance probability for a candidate POI per land-use class.
_URBAN_ACCEPT = {
    LandUse.WATER: 0.0,
    LandUse.PARK: 0.25,
    LandUse.COMMERCIAL: 1.0,
    LandUse.RESIDENTIAL: 0.55,
    LandUse.INDUSTRIAL: 0.3,
    LandUse.RURAL: 0.12,
}
_STATE_ACCEPT = {
    LandUse.WATER: 0.0,
    LandUse.PARK: 0.3,
    LandUse.COMMERCIAL: 1.0,
    LandUse.RESIDENTIAL: 0.6,
    LandUse.INDUSTRIAL: 0.3,
    LandUse.RURAL: 0.04,
}

# Fraction of the category space owned by each land-use class.
_CATEGORY_SHARE = [
    (LandUse.COMMERCIAL, 0.40),
    (LandUse.RESIDENTIAL, 0.25),
    (LandUse.PARK, 0.12),
    (LandUse.INDUSTRIAL, 0.10),
    (LandUse.RURAL, 0.08),
    (LandUse.WATER, 0.05),  # coastal categories: beach, marina, pier...
]

# Hour-of-day affinity peaks per land-use group (mean hour, std).
_TIME_AFFINITY = {
    LandUse.COMMERCIAL: [(12.5, 1.5), (19.0, 2.0)],
    LandUse.RESIDENTIAL: [(8.0, 1.5), (21.5, 2.0)],
    LandUse.PARK: [(10.5, 2.5), (15.5, 2.5)],
    LandUse.INDUSTRIAL: [(9.0, 2.0), (14.0, 2.5)],
    LandUse.RURAL: [(11.0, 3.0), (16.0, 3.0)],
    LandUse.WATER: [(11.0, 2.0), (16.0, 2.5)],
}


@dataclass
class SynthConfig:
    """Knobs for one synthetic dataset."""

    n_pois: int = 500
    n_users: int = 50
    n_categories: int = 24
    n_days: int = 30
    checkins_per_day: float = 3.0
    activity: float = 0.75  # probability a user is active on a day
    vacation_rate: float = 0.06  # chance of starting a >72h gap each day
    repeat_rate: float = 0.3  # favour known POIs over exploration
    anchor_explore_rate: float = 0.6  # exploration around intent anchors
    n_favorites: int = 14
    explore_radius_fraction: float = 0.12  # of bbox width
    explore_candidates: int = 60
    state_style: bool = False
    coastal_boost: float = 6.0  # acceptance multiplier in the coastal band
    # venue aliasing: each accepted location spawns 1..max_aliases
    # co-located same-category POIs.  Users pick among aliases by a
    # private affinity, which is what makes pooled first-order
    # transition counts (Markov chains) blur at scale, as on real LBSN
    # data with huge venue vocabularies.
    max_aliases: int = 3
    alias_jitter_fraction: float = 0.004  # of bbox width
    affinity_sigma: float = 1.0  # lognormal sigma of per-user POI affinity
    seed: int = 0


@dataclass
class UserProfile:
    """Latent behavioural profile driving a user's check-in stream."""

    user_id: int
    home_poi: int
    work_poi: int
    favorites: List[int]
    category_pref: np.ndarray
    activity: float
    repeat_rate: float
    # preferred hour of day per favourite (the user's routine): makes
    # the favourite choice time-conditional, so temporal models beat a
    # time-blind Markov chain on repeat visits.
    favorite_hours: Dict[int, float] = field(default_factory=dict)
    # private multiplicative affinity over every POI: decides which of
    # several co-located venue aliases this user frequents.
    poi_affinity: np.ndarray = field(default=None)


@dataclass
class SyntheticCity:
    """Everything the pipeline needs about one synthetic region."""

    bbox: BoundingBox
    land_use: LandUseMap
    roads: RoadNetwork
    pois: POISet
    checkins: List[Checkin]
    users: List[UserProfile]
    config: SynthConfig
    category_landuse: np.ndarray = field(default=None)  # land-use group per category


def _category_groups(n_categories: int) -> Tuple[np.ndarray, List[str]]:
    """Partition category ids across land-use groups; returns group per id."""
    groups = np.empty(n_categories, dtype=np.int64)
    names = []
    cursor = 0
    for land_class, share in _CATEGORY_SHARE:
        count = max(1, int(round(share * n_categories)))
        for i in range(count):
            if cursor >= n_categories:
                break
            groups[cursor] = int(land_class)
            names.append(f"{land_class.name.lower()}_{i}")
            cursor += 1
    while cursor < n_categories:  # rounding remainder -> commercial
        groups[cursor] = int(LandUse.COMMERCIAL)
        names.append(f"commercial_x{cursor}")
        cursor += 1
    return groups, names


def _place_pois(
    land_use: LandUseMap,
    config: SynthConfig,
    category_groups: np.ndarray,
    rng: np.random.Generator,
) -> Tuple[np.ndarray, np.ndarray]:
    """Rejection-sample POI locations; assign land-use-consistent categories."""
    accept = _STATE_ACCEPT if config.state_style else _URBAN_ACCEPT
    bbox = land_use.bbox
    band = 0.03 * bbox.width
    jitter = config.alias_jitter_fraction * bbox.width
    xs: List[float] = []
    ys: List[float] = []
    classes: List[int] = []
    attempts = 0
    max_attempts = config.n_pois * 400
    while len(xs) < config.n_pois and attempts < max_attempts:
        attempts += 1
        x = bbox.min_x + rng.random() * bbox.width
        y = bbox.min_y + rng.random() * bbox.height
        land_class = land_use.class_at(x, y)
        if land_class == LandUse.WATER:
            continue
        p = accept[land_class]
        if land_use.coastal_band(x, y, band):
            p = min(1.0, p * config.coastal_boost)
            land_class = LandUse.WATER  # coastal category group
        if rng.random() < p:
            # spawn a small cluster of co-located aliases (venues)
            aliases = int(rng.integers(1, config.max_aliases + 1))
            for _ in range(min(aliases, config.n_pois - len(xs))):
                ax, ay = bbox.clamp(x + rng.normal(0, jitter), y + rng.normal(0, jitter))
                xs.append(ax)
                ys.append(ay)
                classes.append(int(land_class))
    if len(xs) < config.n_pois:
        raise RuntimeError(
            f"could only place {len(xs)}/{config.n_pois} POIs; "
            "land-use map too hostile"
        )
    # category: uniform choice among categories of the POI's land-use group
    categories = np.empty(config.n_pois, dtype=np.int64)
    for i, land_class in enumerate(classes):
        pool = np.nonzero(category_groups == land_class)[0]
        if pool.size == 0:
            pool = np.arange(len(category_groups))
        categories[i] = int(rng.choice(pool))
    return np.column_stack([xs, ys]), categories


def _time_affinity(group: int, hour: float) -> float:
    peaks = _TIME_AFFINITY[LandUse(group)]
    value = sum(np.exp(-0.5 * ((hour - mu) / sd) ** 2) for mu, sd in peaks)
    return 0.1 + value


class _Simulator:
    """Per-dataset mobility simulator."""

    def __init__(
        self,
        pois: POISet,
        land_use: LandUseMap,
        category_groups: np.ndarray,
        config: SynthConfig,
        rng: np.random.Generator,
    ):
        self.pois = pois
        self.land_use = land_use
        self.category_groups = category_groups
        self.config = config
        self.rng = rng
        self.tree = cKDTree(pois.xy)
        # Zipf-ish global popularity
        ranks = rng.permutation(len(pois)) + 1
        self.popularity = 1.0 / ranks ** 0.8
        self.explore_radius = config.explore_radius_fraction * land_use.bbox.width

    def make_user(self, user_id: int) -> UserProfile:
        rng = self.rng
        residential = self._pois_of_group(int(LandUse.RESIDENTIAL))
        commercial = self._pois_of_group(int(LandUse.COMMERCIAL))
        home = int(rng.choice(residential if residential.size else np.arange(len(self.pois))))
        hx, hy = self.pois.location_of(home)
        # work: commercial POI, biased toward home for urban / same city for state
        if commercial.size:
            d2 = ((self.pois.xy[commercial] - [hx, hy]) ** 2).sum(axis=1)
            weights = np.exp(-d2 / (2 * (4 * self.explore_radius) ** 2)) + 1e-9
            work = int(rng.choice(commercial, p=weights / weights.sum()))
        else:
            work = home
        favorites = self._sample_favorites(home, work)
        pref = rng.dirichlet(np.full(self.pois.num_categories, 0.3))
        favorite_hours = {
            poi: float(np.clip(rng.normal(14.0, 5.5), 6.0, 23.0)) for poi in favorites
        }
        return UserProfile(
            user_id=user_id,
            home_poi=home,
            work_poi=work,
            favorites=favorites,
            category_pref=pref,
            activity=min(1.0, max(0.2, rng.normal(self.config.activity, 0.1))),
            repeat_rate=min(0.95, max(0.2, rng.normal(self.config.repeat_rate, 0.1))),
            favorite_hours=favorite_hours,
            poi_affinity=rng.lognormal(0.0, self.config.affinity_sigma, len(self.pois)),
        )

    def _pois_of_group(self, group: int) -> np.ndarray:
        mask = self.category_groups[self.pois.categories] == group
        return np.nonzero(mask)[0]

    def _sample_favorites(self, home: int, work: int) -> List[int]:
        favorites = {home, work}
        for anchor in (home, work):
            ax, ay = self.pois.location_of(anchor)
            neighbors = self.tree.query_ball_point([ax, ay], r=self.explore_radius * 2)
            neighbors = [n for n in neighbors if n not in favorites]
            if neighbors:
                take = min(len(neighbors), self.config.n_favorites // 2)
                # Square the popularity so nearby users share the same
                # popular POIs: pooled first-order transitions then have
                # high entropy, while per-user history disambiguates —
                # the regime in which deep models beat Markov chains.
                weights = self.popularity[neighbors] ** 2
                weights = weights / weights.sum()
                chosen = self.rng.choice(neighbors, size=take, replace=False, p=weights)
                favorites.update(int(c) for c in chosen)
        return sorted(favorites)

    def _anchor_of(self, user: UserProfile, hour: float) -> int:
        """Intent anchor by time of day: work mid-day, home otherwise."""
        if 10.0 <= hour <= 17.5:
            return user.work_poi
        return user.home_poi

    def next_poi(self, user: UserProfile, current: int, hour: float) -> int:
        """Draw the next POI.

        Three behavioural modes, mixing exactly the regularities the
        models under test differ on:

        * *repeat* — revisit a personal favourite (predictable from the
          user's history, not from the current POI alone);
        * *anchor exploration* — try something near the time-of-day
          intent anchor (home/work), so pooled first-order transitions
          stay diffuse while (user, time) context is informative;
        * *local exploration* — try something near the current POI
          (the sequential-transition signal).
        """
        rng = self.rng
        mode = rng.random()
        if mode < user.repeat_rate:
            candidates = np.array([p for p in user.favorites if p != current])
            if candidates.size == 0:
                candidates = np.array(user.favorites)
            # routine: strongly prefer the favourite whose usual hour
            # matches now (time-conditional repeat behaviour)
            routine = np.array(
                [
                    np.exp(-0.5 * ((hour - user.favorite_hours.get(int(p), 14.0)) / 3.0) ** 2)
                    for p in candidates
                ]
            )
            routine = routine + 0.15
            center = self._anchor_of(user, hour)
        else:
            routine = None
            if rng.random() < self.config.anchor_explore_rate:
                center = self._anchor_of(user, hour)
            else:
                center = current
            cx, cy = self.pois.location_of(center)
            _, idx = self.tree.query([cx, cy], k=min(self.config.explore_candidates, len(self.pois)))
            candidates = np.atleast_1d(idx)
            candidates = candidates[candidates != current]
            if candidates.size == 0:
                candidates = np.arange(len(self.pois))
        cats = self.pois.categories[candidates]
        groups = self.category_groups[cats]
        affinity = np.array([_time_affinity(g, hour) for g in groups])
        weights = (user.category_pref[cats] + 1e-6) * affinity * (self.popularity[candidates] + 1e-6)
        weights = weights * user.poi_affinity[candidates]  # alias choice
        if routine is not None:
            weights = weights * routine
        cx, cy = self.pois.location_of(center)
        d = np.sqrt(((self.pois.xy[candidates] - [cx, cy]) ** 2).sum(axis=1))
        weights = weights * np.exp(-d / (self.explore_radius + 1e-9))
        weights = weights / weights.sum()
        return int(rng.choice(candidates, p=weights))

    def simulate_user(self, user: UserProfile, start_day: int = 0) -> List[Checkin]:
        rng = self.rng
        records: List[Checkin] = []
        day = start_day
        while day < start_day + self.config.n_days:
            if rng.random() < self.config.vacation_rate:
                day += int(rng.integers(4, 8))  # >72h gap -> new trajectory window
                continue
            if rng.random() > user.activity:
                day += 1
                continue
            n_events = rng.poisson(self.config.checkins_per_day)
            if n_events == 0:
                day += 1
                continue
            hours = np.sort(_sample_hours(rng, n_events))
            current = user.home_poi
            for hour in hours:
                current = self.next_poi(user, current, float(hour))
                jitter = rng.uniform(0, 0.4)
                records.append(
                    Checkin(user_id=user.user_id, poi_id=current, timestamp=day * 24.0 + float(hour) + jitter)
                )
            day += 1
        return records


def _sample_hours(rng: np.random.Generator, n: int) -> np.ndarray:
    """Draw event hours from a morning/noon/evening mixture."""
    peaks = np.array([9.0, 12.5, 18.5, 21.0])
    stds = np.array([1.2, 1.0, 1.5, 1.2])
    which = rng.integers(0, len(peaks), size=n)
    hours = rng.normal(peaks[which], stds[which])
    return np.clip(hours, 0.0, 23.49)


def generate_city(
    bbox: BoundingBox,
    land_use: LandUseMap,
    roads: RoadNetwork,
    config: SynthConfig,
) -> SyntheticCity:
    """Run the full generation pipeline for one dataset."""
    rng = np.random.default_rng(config.seed)
    groups, names = _category_groups(config.n_categories)
    xy, categories = _place_pois(land_use, config, groups, rng)
    pois = POISet(xy, categories, category_names=names)
    sim = _Simulator(pois, land_use, groups, config, rng)
    users = [sim.make_user(uid) for uid in range(config.n_users)]
    checkins: List[Checkin] = []
    for user in users:
        checkins.extend(sim.simulate_user(user))
    checkins.sort(key=lambda r: (r.user_id, r.timestamp))
    return SyntheticCity(
        bbox=bbox,
        land_use=land_use,
        roads=roads,
        pois=pois,
        checkins=checkins,
        users=users,
        config=config,
        category_landuse=groups,
    )
