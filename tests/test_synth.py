"""Tests for the synthetic LBSN generator and dataset presets."""

import numpy as np
import pytest

from repro.data import SynthConfig, build_dataset, compute_stats, get_spec
from repro.data.synth import _category_groups, generate_city
from repro.geo import BoundingBox
from repro.imagery import LandUse, LandUseMap, Coastline
from repro.roadnet import RoadNetwork

BOX = BoundingBox(0.0, 0.0, 10.0, 10.0)


def _tiny_city(seed=0, **overrides):
    config = SynthConfig(
        n_pois=80, n_users=8, n_categories=12, n_days=12, seed=seed, **overrides
    )
    land = LandUseMap(bbox=BOX)
    from repro.imagery import CityCenter

    land.centers.append(CityCenter(5.0, 5.0, 1.5, 3.5))
    return generate_city(BOX, land, RoadNetwork(), config)


class TestCategoryGroups:
    def test_all_categories_assigned(self):
        groups, names = _category_groups(20)
        assert len(groups) == 20 and len(names) == 20

    def test_commercial_largest_share(self):
        groups, _ = _category_groups(30)
        counts = {g: int((groups == g).sum()) for g in set(groups.tolist())}
        assert counts[int(LandUse.COMMERCIAL)] == max(counts.values())


class TestGeneration:
    def test_poi_count_and_ids(self):
        city = _tiny_city()
        assert len(city.pois) == 80
        assert city.pois.categories.max() < 12

    def test_no_pois_in_water(self):
        land = LandUseMap(bbox=BOX, coast=Coastline(base=7.0, side="east"))
        config = SynthConfig(n_pois=60, n_users=4, n_categories=12, n_days=8, seed=1)
        city = generate_city(BOX, land, RoadNetwork(), config)
        classes = land.classes_at(city.pois.xy[:, 0], city.pois.xy[:, 1])
        assert (classes != int(LandUse.WATER)).all()

    def test_pois_cluster_in_city(self):
        """Density inside the urban core exceeds the rural fringe."""
        city = _tiny_city()
        xy = city.pois.xy
        center_dist = np.sqrt(((xy - [5.0, 5.0]) ** 2).sum(axis=1))
        inner = (center_dist < 3.5).mean() / (3.5 ** 2)
        outer = (center_dist >= 3.5).mean() / (10 ** 2 - 3.5 ** 2)
        assert inner > outer

    def test_checkins_sorted_and_valid(self):
        city = _tiny_city()
        assert len(city.checkins) > 0
        for a, b in zip(city.checkins, city.checkins[1:]):
            assert (a.user_id, a.timestamp) <= (b.user_id, b.timestamp)
            assert 0 <= a.poi_id < len(city.pois)

    def test_deterministic_given_seed(self):
        a, b = _tiny_city(seed=3), _tiny_city(seed=3)
        assert [c.poi_id for c in a.checkins] == [c.poi_id for c in b.checkins]

    def test_different_seeds_differ(self):
        a, b = _tiny_city(seed=4), _tiny_city(seed=5)
        assert [c.poi_id for c in a.checkins] != [c.poi_id for c in b.checkins]

    def test_users_have_profiles(self):
        city = _tiny_city()
        for user in city.users:
            assert user.favorites
            assert user.poi_affinity.shape == (len(city.pois),)
            assert 0 <= user.home_poi < len(city.pois)

    def test_repeat_behaviour_present(self):
        """Users revisit: unique POIs per user < check-ins per user."""
        city = _tiny_city()
        by_user = {}
        for record in city.checkins:
            by_user.setdefault(record.user_id, []).append(record.poi_id)
        revisit = [len(set(v)) / len(v) for v in by_user.values() if len(v) > 10]
        assert revisit and np.mean(revisit) < 0.9

    def test_impossible_config_raises(self):
        land = LandUseMap(bbox=BOX, coast=Coastline(base=0.0001, side="east"))  # ~all water
        config = SynthConfig(n_pois=50, n_users=2, n_categories=12, n_days=5)
        with pytest.raises(RuntimeError):
            generate_city(BOX, land, RoadNetwork(), config)


class TestPresets:
    def test_all_presets_build(self):
        for name in ("nyc", "tky", "california", "florida"):
            ds = build_dataset(name, seed=0, scale=0.12, imagery_resolution=16)
            stats = compute_stats(ds)
            assert stats.checkins > 0
            assert stats.leaf_tiles >= 1
            assert ds.imagery.resolution == 16

    def test_unknown_preset(self):
        with pytest.raises(KeyError):
            get_spec("paris")

    def test_scale_grows_dataset(self):
        small = get_spec("nyc").scaled(0.2)
        large = get_spec("nyc").scaled(1.0)
        assert small.n_users < large.n_users
        assert small.n_pois < large.n_pois

    def test_urban_vs_state_coverage(self):
        urban = get_spec("nyc").bbox.area
        state = get_spec("california").bbox.area
        assert state / urban > 500  # paper: ~1000x

    def test_noise_fraction_flows_to_imagery(self):
        ds = build_dataset("nyc", seed=0, scale=0.12, imagery_resolution=16, noise_fraction=0.2)
        assert ds.imagery.noise_fraction == 0.2

    def test_florida_has_east_coast_water(self):
        ds = build_dataset("florida", seed=0, scale=0.12, imagery_resolution=16)
        land = ds.city.land_use
        assert land.coast is not None and land.coast.side == "east"
        east = land.class_at(ds.spec.bbox.max_x - 0.01, ds.spec.bbox.center[1])
        assert east == LandUse.WATER
