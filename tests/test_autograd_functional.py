"""Tests for fused functional ops (softmax family, conv2d, normalisation)."""

import numpy as np
import pytest

from repro.autograd import (
    Tensor,
    conv2d,
    cosine_similarity,
    cross_entropy,
    dropout,
    gradcheck,
    l2_normalize,
    log_softmax,
    masked_fill,
    softmax,
)
from repro.autograd.functional import col2im, im2col


def _t(data):
    return Tensor(np.asarray(data, dtype=np.float64), requires_grad=True)


class TestSoftmaxFamily:
    def test_softmax_rows_sum_to_one(self):
        x = _t(np.random.default_rng(0).normal(size=(4, 7)))
        out = softmax(x, axis=-1)
        assert np.allclose(out.data.sum(axis=-1), 1.0)

    def test_softmax_grad(self):
        x = _t(np.random.default_rng(1).normal(size=(3, 5)))
        assert gradcheck(lambda t: softmax(t, axis=-1), [x])

    def test_softmax_stable_for_large_logits(self):
        x = _t([[1000.0, 1000.0]])
        out = softmax(x)
        assert np.allclose(out.data, [[0.5, 0.5]])

    def test_log_softmax_grad(self):
        x = _t(np.random.default_rng(2).normal(size=(2, 6)))
        assert gradcheck(lambda t: log_softmax(t, axis=-1), [x])

    def test_log_softmax_matches_log_of_softmax(self):
        x = _t(np.random.default_rng(3).normal(size=(2, 4)))
        assert np.allclose(log_softmax(x).data, np.log(softmax(x).data))

    def test_cross_entropy_perfect_prediction_near_zero(self):
        logits = _t([[100.0, 0.0], [0.0, 100.0]])
        loss = cross_entropy(logits, np.array([0, 1]))
        assert loss.item() < 1e-6

    def test_cross_entropy_grad(self):
        x = _t(np.random.default_rng(4).normal(size=(3, 4)))
        targets = np.array([0, 2, 1])
        assert gradcheck(lambda t: cross_entropy(t, targets), [x])


class TestMaskingAndNorms:
    def test_masked_fill_values(self):
        x = _t([[1.0, 2.0], [3.0, 4.0]])
        mask = np.array([[True, False], [False, True]])
        out = masked_fill(x, mask, -99.0)
        assert np.allclose(out.data, [[-99.0, 2.0], [3.0, -99.0]])

    def test_masked_fill_blocks_grad(self):
        x = _t([[1.0, 2.0]])
        out = masked_fill(x, np.array([[True, False]]), 0.0)
        out.backward(np.ones((1, 2)))
        assert np.allclose(x.grad, [[0.0, 1.0]])

    def test_l2_normalize_unit_norm(self):
        x = _t(np.random.default_rng(5).normal(size=(4, 8)))
        out = l2_normalize(x)
        assert np.allclose(np.linalg.norm(out.data, axis=-1), 1.0)

    def test_l2_normalize_grad(self):
        x = _t(np.random.default_rng(6).normal(size=(2, 5)))
        assert gradcheck(lambda t: l2_normalize(t), [x], atol=1e-4)

    def test_cosine_similarity_bounds(self):
        rng = np.random.default_rng(7)
        a, b = _t(rng.normal(size=(10, 6))), _t(rng.normal(size=(10, 6)))
        sims = cosine_similarity(a, b).data
        assert np.all(sims <= 1.0 + 1e-9) and np.all(sims >= -1.0 - 1e-9)

    def test_cosine_similarity_self_is_one(self):
        a = _t(np.random.default_rng(8).normal(size=(3, 4)))
        assert np.allclose(cosine_similarity(a, a).data, 1.0)

    def test_cosine_similarity_grad(self):
        rng = np.random.default_rng(9)
        a, b = _t(rng.normal(size=(2, 4))), _t(rng.normal(size=(2, 4)))
        assert gradcheck(lambda x, y: cosine_similarity(x, y), [a, b], atol=1e-4)


class TestDropout:
    def test_eval_mode_is_identity(self):
        x = _t(np.ones((5, 5)))
        out = dropout(x, 0.5, np.random.default_rng(0), training=False)
        assert np.allclose(out.data, 1.0)

    def test_training_scales_surviving_units(self):
        x = _t(np.ones((2000,)))
        out = dropout(x, 0.5, np.random.default_rng(0), training=True)
        kept = out.data[out.data > 0]
        assert np.allclose(kept, 2.0)
        # roughly half survive
        assert 0.4 < kept.size / 2000 < 0.6

    def test_zero_rate_identity(self):
        x = _t(np.ones(4))
        out = dropout(x, 0.0, np.random.default_rng(0), training=True)
        assert out is x


class TestConv2d:
    def test_im2col_col2im_adjoint(self):
        rng = np.random.default_rng(10)
        x = rng.normal(size=(2, 3, 6, 6))
        cols, oh, ow = im2col(x, kernel=3, stride=2, padding=1)
        # <Ax, Ax> = <x, A^T A x> checks the adjoint pairing
        y = rng.normal(size=cols.shape)
        lhs = float((cols * y).sum())
        back = col2im(y, x.shape, 3, 2, 1, oh, ow)
        rhs = float((x * back).sum())
        assert np.isclose(lhs, rhs)

    def test_conv_output_shape(self):
        x = _t(np.zeros((1, 3, 8, 8)))
        w = _t(np.zeros((4, 3, 3, 3)))
        out = conv2d(x, w, stride=2, padding=1)
        assert out.shape == (1, 4, 4, 4)

    def test_conv_matches_direct_computation(self):
        rng = np.random.default_rng(11)
        x = _t(rng.normal(size=(1, 1, 4, 4)))
        w = _t(rng.normal(size=(1, 1, 2, 2)))
        out = conv2d(x, w, stride=1, padding=0)
        expected = np.zeros((3, 3))
        for i in range(3):
            for j in range(3):
                expected[i, j] = (x.data[0, 0, i:i + 2, j:j + 2] * w.data[0, 0]).sum()
        assert np.allclose(out.data[0, 0], expected)

    @pytest.mark.parametrize("stride,padding", [(1, 0), (2, 1), (2, 0)])
    def test_conv_grad(self, stride, padding):
        rng = np.random.default_rng(12)
        x = _t(rng.normal(size=(2, 2, 5, 5)))
        w = _t(rng.normal(size=(3, 2, 3, 3)))
        b = _t(rng.normal(size=3))
        assert gradcheck(
            lambda a, ww, bb: conv2d(a, ww, bb, stride=stride, padding=padding),
            [x, w, b],
            atol=1e-4,
        )

    def test_conv_rejects_bad_shapes(self):
        x = _t(np.zeros((1, 3, 8, 8)))
        w = _t(np.zeros((4, 2, 3, 3)))
        with pytest.raises(ValueError):
            conv2d(x, w)
