"""Table V — memory / training / inference cost comparison.

Paper shape to reproduce: TSPN-RA's inference is among the fastest of
the attention models because the tile filter shrinks the candidate
set; STAN is the most expensive to train; recurrent history models
(DeepMove/LSTPM) pay per-step costs at inference.

Absolute values are CPU/numpy figures, not the paper's GPU testbed.
"""

from repro.experiments import format_table
from repro.experiments.tables import run_table5


def bench_table5(benchmark, profile, save_report):
    small = profile.smaller(0.8)
    results = benchmark.pedantic(run_table5, args=(small,), rounds=1, iterations=1)
    blocks = []
    for dataset, reports in results.items():
        rows = [r.as_row() for r in reports]
        blocks.append(
            format_table(
                ["Model", "PeakMem", "Train", "Infer"],
                rows,
                title=f"Table V — efficiency ({dataset.upper()})",
            )
        )
    save_report("table5", "\n\n".join(blocks))
    for dataset, reports in results.items():
        assert all(r.train_seconds > 0 for r in reports)
