"""Tile systems: the spatial-partition abstraction behind TSPN-RA.

The model interacts with urban space only through this interface:
candidate leaf tiles, POI->tile projection, and a historical-knowledge
graph.  Two implementations exist:

* :class:`QuadTreeTileSystem` — the paper's design (region quad-tree +
  QR-P graph with branch/road/contain edges);
* :class:`GridTileSystem` — the Table IV "Grid Replace Quad-tree"
  ablation: fixed cells, no hierarchy, hence no branch edges.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..data.trajectory import Trajectory, concat_history
from ..graphs import HeteroGraph, QRPGraph, QRPGraphMaintainer, build_qrp_graph
from ..spatial import GridIndex, RegionQuadTree


class QuadTreeTileSystem:
    """Quad-tree-backed tiles with full QR-P graphs."""

    def __init__(self, tree: RegionQuadTree, road_adjacency: Set[Tuple[int, int]]):
        self.tree = tree
        self.road_adjacency = road_adjacency
        self._maintainer: Optional[QRPGraphMaintainer] = None

    @property
    def num_tiles(self) -> int:
        """All tiles, leaves and internal (all can carry imagery)."""
        return len(self.tree)

    def leaves(self) -> List[int]:
        return self.tree.leaves()

    def leaf_of_poi(self, poi_id: int) -> int:
        return self.tree.leaf_of_poi(poi_id)

    def pois_in_leaf(self, leaf_id: int) -> List[int]:
        return self.tree.pois_in_leaf(leaf_id)

    def build_graph(self, history: Sequence[Trajectory]) -> QRPGraph:
        return build_qrp_graph(self.tree, self.road_adjacency, history)

    def graph_maintainer(self) -> QRPGraphMaintainer:
        """The shared incremental QR-P maintainer for this tile system.

        Memoised so every worker replica (which shares the tile-system
        object zero-copy) attaches the *same* maintainer to the user
        store — the store accepts one maintainer and keeps pushing
        fresh graph entries to every compatible worker cache.
        ``GridTileSystem`` deliberately has no counterpart: its grid
        graphs fall back to full rebuilds on the cache-miss path.
        """
        if self._maintainer is None:
            self._maintainer = QRPGraphMaintainer(self.tree, self.road_adjacency)
        return self._maintainer


class GridTileSystem:
    """Fixed-grid tiles; the historical graph has no branch edges."""

    def __init__(self, grid: GridIndex, road_adjacency: Set[Tuple[int, int]]):
        self.grid = grid
        self.road_adjacency = road_adjacency

    @property
    def num_tiles(self) -> int:
        return len(self.grid)

    def leaves(self) -> List[int]:
        return self.grid.leaves()

    def leaf_of_poi(self, poi_id: int) -> int:
        return self.grid.leaf_of_poi(poi_id)

    def pois_in_leaf(self, leaf_id: int) -> List[int]:
        return self.grid.pois_in_leaf(leaf_id)

    def build_graph(self, history: Sequence[Trajectory]) -> QRPGraph:
        visits = concat_history(list(history))
        graph = HeteroGraph()
        if not visits:
            return QRPGraph(graph, [], [], [], [], set())
        poi_ids = [v.poi_id for v in visits]
        cells = {self.grid.leaf_of_poi(p) for p in poi_ids}
        for cell in sorted(cells):
            graph.add_node("tile", cell)
        for a, b in self.road_adjacency:
            if a in cells and b in cells:
                graph.add_edge("road", graph.index_of("tile", a), graph.index_of("tile", b))
        for poi in dict.fromkeys(poi_ids):
            poi_index = graph.add_node("poi", poi)
            cell_index = graph.index_of("tile", self.grid.leaf_of_poi(poi))
            graph.add_edge("contain", cell_index, poi_index)
        graph.validate()
        tile_nodes = graph.nodes_of_type("tile")
        poi_nodes = graph.nodes_of_type("poi")
        return QRPGraph(
            graph=graph,
            tile_nodes=tile_nodes,
            tile_refs=[graph.node_refs[i] for i in tile_nodes],
            poi_nodes=poi_nodes,
            poi_refs=[graph.node_refs[i] for i in poi_nodes],
            leaf_tile_refs=set(cells),
        )
