"""Spatial and temporal encoders (paper Sec. IV-A, Fig. 7).

The spatial encoder Ms is the fixed sinusoidal position code of Eq. 4:
the first half of the embedding dimensions encode x, the second half
encode y.  Nearby locations get high-cosine-similarity codes (paper
Fig. 8).  The temporal encoder Mt adds a learnable embedding of the
half-hour-of-day slot (48 slots).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..autograd import Tensor, get_default_dtype
from ..data.checkin import HOURS_PER_DAY, SLOTS_PER_DAY
from ..nn import Embedding, Module
from ..utils.rng import default_rng


def time_slots(timestamps) -> np.ndarray:
    """Elementwise half-hour-of-day slot ids for any timestamp shape.

    The exact lookup :class:`TemporalEncoder` applies — factored out so
    the compiled feed-prep stage computes identical slot ids.  The
    vectorised form matches :func:`~repro.data.checkin.time_slot`
    exactly: ``t % 24`` is non-negative, so ``astype(int64)``
    (truncation) equals Python's ``int()`` on every element.
    """
    hours = np.asarray(timestamps, dtype=np.float64)
    slots = ((hours % HOURS_PER_DAY) * 2.0).astype(np.int64) % SLOTS_PER_DAY
    return slots


def spatial_encoding(
    locations: np.ndarray, dim: int, scale: float = 100.0, dtype=None
) -> np.ndarray:
    """Eq. 4 sinusoidal code for ``(..., 2)`` unit-square locations.

    ``scale`` stretches the unit square before encoding so the highest
    sinusoid frequency actually varies across a city block; without it
    sin(x) with x in [0, 1] is nearly linear and all codes collapse
    together (the paper feeds raw projected coordinates, which span a
    comparable numeric range).

    Any leading shape is accepted — ``(n, 2)`` per-sample sequences and
    ``(batch, length, 2)`` padded batches encode identically row by
    row; the output is ``locations.shape[:-1] + (dim,)``.

    ``dtype`` picks the output buffer dtype (default: the engine's
    default floating dtype); the sinusoids themselves are always
    evaluated in float64 and cast on assignment, so a float32 code is
    exactly the rounded float64 code.
    """
    if dim % 4 != 0:
        raise ValueError("dim must be divisible by 4")
    if dtype is None:
        dtype = get_default_dtype()
    locations = np.asarray(locations, dtype=np.float64)
    if locations.ndim == 1:
        locations = locations[None, :]
    lead = locations.shape[:-1]
    flat = locations.reshape(-1, 2)
    n = len(flat)
    out = np.zeros((n, dim), dtype=dtype)
    quarter = dim // 4
    xs = flat[:, 0] * scale
    ys = flat[:, 1] * scale
    i = np.arange(quarter)
    div = 10000.0 ** (2.0 * i / dim)  # (quarter,)
    out[:, 0:dim // 2:2] = np.sin(xs[:, None] / div)
    out[:, 1:dim // 2:2] = np.cos(xs[:, None] / div)
    out[:, dim // 2::2] = np.sin(ys[:, None] / div)
    out[:, dim // 2 + 1::2] = np.cos(ys[:, None] / div)
    return out.reshape(lead + (dim,))


class SpatialEncoder(Module):
    """Adds the Eq. 4 code to a tile-embedding sequence: h_s = E_T(tau) + h_loc."""

    def __init__(self, dim: int, scale: float = 100.0):
        super().__init__()
        self.dim = dim
        self.scale = scale

    def forward(self, embeddings: Tensor, locations: np.ndarray) -> Tensor:
        code = spatial_encoding(locations, self.dim, scale=self.scale)
        return embeddings + Tensor(code)


class TemporalEncoder(Module):
    """Adds a learnable 48-slot time-of-day embedding: h = h_s + h_t.

    ``timestamps`` may be a flat sequence (one trajectory) or a padded
    ``(batch, length)`` array — the slot lookup is elementwise either
    way, so batched and per-sample paths see identical embeddings.
    """

    def __init__(self, dim: int, rng=None):
        super().__init__()
        self.slots = Embedding(SLOTS_PER_DAY, dim, rng=rng or default_rng())

    def forward(self, embeddings: Tensor, timestamps: Sequence[float]) -> Tensor:
        return embeddings + self.slots(time_slots(timestamps))
