"""Experiment harness: profiles, runners for every table and figure."""

from .harness import (
    ALL_MODELS,
    PreparedData,
    build_model,
    eval_model,
    make_predictor,
    prepare,
    run_comparison,
    run_one,
    train_model,
    tspnra_config,
)
from .profile import FULL, QUICK, ExperimentProfile, current_profile, get_profile
from .registry import EXPERIMENTS, run
from .reporting import (
    METRIC_COLUMNS,
    best_baseline,
    format_results,
    format_table,
    improvement_row,
    relative_drop,
)

__all__ = [
    "ALL_MODELS",
    "EXPERIMENTS",
    "FULL",
    "METRIC_COLUMNS",
    "PreparedData",
    "QUICK",
    "ExperimentProfile",
    "best_baseline",
    "build_model",
    "current_profile",
    "eval_model",
    "format_results",
    "format_table",
    "get_profile",
    "improvement_row",
    "make_predictor",
    "prepare",
    "relative_drop",
    "run",
    "run_comparison",
    "run_one",
    "train_model",
    "tspnra_config",
]
