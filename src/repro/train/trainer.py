"""Training loop shared by TSPN-RA and the learned baselines.

Implements the paper's protocol: Adam with exponentially decayed
learning rate, mini-batches of samples, loss summed per batch.  Any
model conforming to the predictor protocol's shared-state convention
(``compute_embeddings()``, ``()`` for stateless models) and exposing
``loss_sample(sample, *shared)`` can be trained.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..data.trajectory import PredictionSample
from ..optim import Adam, ExponentialDecay
from ..utils.rng import spawn


@dataclass
class TrainConfig:
    """Training hyper-parameters.

    The paper trains 40 epochs at lr=2e-5 with batch size 8 on GPU;
    the scaled-down CPU default is fewer epochs at a proportionally
    larger learning rate (the Fig. 10 bench sweeps both).
    """

    epochs: int = 3
    batch_size: int = 8
    lr: float = 2e-3
    lr_decay: float = 0.95
    max_grad_norm: float = 5.0
    max_train_samples: Optional[int] = None
    seed: int = 0
    verbose: bool = False


@dataclass
class TrainHistory:
    """Per-epoch mean loss (plus anything callbacks append)."""

    epoch_losses: List[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        return self.epoch_losses[-1] if self.epoch_losses else float("nan")

    def improved(self) -> bool:
        """Did loss go down from first to last epoch?"""
        return len(self.epoch_losses) >= 2 and self.epoch_losses[-1] < self.epoch_losses[0]


class Trainer:
    """Mini-batch trainer."""

    def __init__(self, model, config: Optional[TrainConfig] = None):
        self.model = model
        self.config = config or TrainConfig()
        self.optimizer = Adam(
            model.parameters(),
            lr=self.config.lr,
            max_grad_norm=self.config.max_grad_norm,
        )
        self.scheduler = ExponentialDecay(self.optimizer, gamma=self.config.lr_decay)

    def fit(
        self,
        samples: Sequence[PredictionSample],
        epoch_callback: Optional[Callable[[int, float], None]] = None,
    ) -> TrainHistory:
        rng = spawn(self.config.seed)
        samples = list(samples)
        if self.config.max_train_samples is not None and len(samples) > self.config.max_train_samples:
            picked = rng.choice(len(samples), size=self.config.max_train_samples, replace=False)
            samples = [samples[i] for i in picked]
        history = TrainHistory()
        self.model.train()
        for epoch in range(self.config.epochs):
            order = rng.permutation(len(samples))
            losses: List[float] = []
            for start in range(0, len(order), self.config.batch_size):
                batch = [samples[i] for i in order[start:start + self.config.batch_size]]
                loss_value = self._train_batch(batch)
                losses.append(loss_value)
            mean_loss = float(np.mean(losses)) if losses else float("nan")
            history.epoch_losses.append(mean_loss)
            if self.config.verbose:
                print(f"epoch {epoch + 1}/{self.config.epochs}: loss={mean_loss:.4f}")
            if epoch_callback is not None:
                epoch_callback(epoch, mean_loss)
            self.scheduler.step()
        return history

    def _train_batch(self, batch: Sequence[PredictionSample]) -> float:
        self.optimizer.zero_grad()
        shared = self.model.compute_embeddings()
        total = None
        for sample in batch:
            loss = self.model.loss_sample(sample, *shared)
            total = loss if total is None else total + loss
        total = total * (1.0 / len(batch))
        total.backward()
        self.optimizer.step()
        return float(total.item())
