"""Versioned ``UserStateStore`` snapshots: the fast half of recovery.

A snapshot is a compressed ``.npz`` in the checkpoint idiom
(:mod:`repro.serve.checkpoint`): a ``__meta__`` JSON blob plus flat
numpy arrays.  Per-user state — completed sessions, the open prefix,
and the exact ``state_version``/``history_version`` counters — is
packed into concatenated arrays with per-user offsets, so a store with
thousands of users is a handful of arrays, not thousands.

The meta records the event-log position (``last_seq``) the snapshot is
consistent with: recovery loads the newest snapshot and folds only the
log records past it.  Writes are atomic (temp file + ``os.replace``),
so a crash mid-snapshot leaves the previous snapshot intact and the
torn temp file ignored.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional

import numpy as np

from ..stream.state import StoreConfig, UserStateStore

SNAPSHOT_FORMAT = 1

_SNAPSHOT_PREFIX = "snapshot-"
_SNAPSHOT_SUFFIX = ".npz"


class SnapshotError(RuntimeError):
    """A snapshot file this build cannot restore."""


def _snapshot_name(last_seq: int) -> str:
    return f"{_SNAPSHOT_PREFIX}{last_seq:012d}{_SNAPSHOT_SUFFIX}"


def _snapshot_seq(path: Path) -> Optional[int]:
    name = path.name
    if not (name.startswith(_SNAPSHOT_PREFIX) and name.endswith(_SNAPSHOT_SUFFIX)):
        return None
    try:
        return int(name[len(_SNAPSHOT_PREFIX) : -len(_SNAPSHOT_SUFFIX)])
    except ValueError:
        return None


def list_snapshots(directory) -> List[Path]:
    """Snapshot files under ``directory``, oldest first."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    found = [
        (seq, path)
        for path in directory.iterdir()
        if (seq := _snapshot_seq(path)) is not None
    ]
    found.sort()
    return [path for _, path in found]


def save_snapshot(store: UserStateStore, directory, last_seq: int) -> Path:
    """Write the store's state as ``snapshot-<last_seq>.npz``, atomically.

    The caller guarantees the store is quiescent and that every append
    up to and including log seq ``last_seq`` — and none after — is
    reflected in it (the shard worker's single data-loop thread makes
    this trivially true).
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    users = store.export_users()
    stats = store.stats()

    user_ids = np.array([u["user_id"] for u in users], dtype=np.int64)
    state_versions = np.array([u["state_version"] for u in users], dtype=np.int64)
    history_versions = np.array([u["history_version"] for u in users], dtype=np.int64)
    last_timestamps = np.array([u["last_timestamp"] for u in users], dtype=np.float64)
    session_counts = np.array([len(u["sessions"]) for u in users], dtype=np.int64)
    session_lengths = np.array(
        [len(s) for u in users for s in u["sessions"]], dtype=np.int64
    )
    session_visits = [(p, t) for u in users for s in u["sessions"] for p, t in s]
    open_lengths = np.array([len(u["open"]) for u in users], dtype=np.int64)
    open_visits = [(p, t) for u in users for p, t in u["open"]]

    config = store.config
    meta = {
        "format": SNAPSHOT_FORMAT,
        "last_seq": int(last_seq),
        "users": len(users),
        "store": {
            "num_shards": config.num_shards,
            "max_sessions": config.max_sessions,
            "max_session_visits": config.max_session_visits,
            "gap_hours": config.gap_hours,
        },
        "counters": {
            "events": stats["events"],
            "rollovers": stats["sessions_rolled"],
            "forced_rolls": stats["forced_rolls"],
            # lifetime incremental-graph counters ride along so a
            # recovered shard's /stats keeps the pre-crash totals; the
            # graphs themselves are never persisted — they are a pure
            # function of the session deque and re-materialise lazily
            # on the first post-recovery rollover
            "graph_updates": stats.get("graph_updates", 0),
            "graph_evictions": stats.get("graph_evictions", 0),
            "graph_rebuilds": stats.get("graph_rebuilds", 0),
        },
    }
    arrays = {
        "__meta__": np.array(json.dumps(meta)),
        "user_ids": user_ids,
        "state_versions": state_versions,
        "history_versions": history_versions,
        "last_timestamps": last_timestamps,
        "session_counts": session_counts,
        "session_lengths": session_lengths,
        "session_pois": np.array([p for p, _ in session_visits], dtype=np.int64),
        "session_times": np.array([t for _, t in session_visits], dtype=np.float64),
        "open_lengths": open_lengths,
        "open_pois": np.array([p for p, _ in open_visits], dtype=np.int64),
        "open_times": np.array([t for _, t in open_visits], dtype=np.float64),
    }
    path = directory / _snapshot_name(last_seq)
    tmp = directory / (path.name + ".tmp")
    with open(tmp, "wb") as fh:
        np.savez_compressed(fh, **arrays)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    return path


@dataclass
class LoadedSnapshot:
    """A restored store plus the log position it is consistent with."""

    store: UserStateStore
    last_seq: int
    users: int
    path: Path
    meta: Dict


def load_snapshot(path, config: Optional[StoreConfig] = None) -> LoadedSnapshot:
    """Rebuild a :class:`UserStateStore` from one snapshot file.

    ``config`` overrides lock striping (``num_shards`` is concurrency
    layout, not semantics) but must agree with the snapshot on the
    session-split knobs — replaying the log tail under a different
    ``gap_hours`` would fork the version history from what clients were
    acknowledged against.
    """
    path = Path(path)
    with np.load(path, allow_pickle=False) as data:
        meta = json.loads(data["__meta__"].item())
        arrays = {k: data[k] for k in data.files if k != "__meta__"}
    found = meta.get("format")
    if found != SNAPSHOT_FORMAT:
        raise SnapshotError(
            f"snapshot {path!s} uses format {found!r}, this build supports "
            f"format {SNAPSHOT_FORMAT}"
        )
    stored = meta["store"]
    if config is None:
        config = StoreConfig(**stored)
    else:
        for knob in ("max_sessions", "max_session_visits", "gap_hours"):
            if getattr(config, knob) != stored[knob]:
                raise SnapshotError(
                    f"snapshot {path.name} was written with {knob}="
                    f"{stored[knob]!r} but recovery requested "
                    f"{getattr(config, knob)!r}; replaying the log under "
                    "different session-split rules would corrupt state"
                )
    store = UserStateStore(config)

    session_offsets = np.concatenate(([0], np.cumsum(arrays["session_lengths"])))
    open_offsets = np.concatenate(([0], np.cumsum(arrays["open_lengths"])))
    session_cursor = 0
    for index, user_id in enumerate(arrays["user_ids"]):
        count = int(arrays["session_counts"][index])
        sessions = []
        for s in range(session_cursor, session_cursor + count):
            lo, hi = session_offsets[s], session_offsets[s + 1]
            sessions.append(
                list(
                    zip(
                        arrays["session_pois"][lo:hi].tolist(),
                        arrays["session_times"][lo:hi].tolist(),
                    )
                )
            )
        session_cursor += count
        lo, hi = open_offsets[index], open_offsets[index + 1]
        store.restore_user(
            user_id=int(user_id),
            sessions=sessions,
            open_visits=list(
                zip(
                    arrays["open_pois"][lo:hi].tolist(),
                    arrays["open_times"][lo:hi].tolist(),
                )
            ),
            state_version=int(arrays["state_versions"][index]),
            history_version=int(arrays["history_versions"][index]),
            last_timestamp=float(arrays["last_timestamps"][index]),
        )
    counters = meta.get("counters", {})
    store.restore_counters(
        events=counters.get("events", 0),
        rollovers=counters.get("rollovers", 0),
        forced_rolls=counters.get("forced_rolls", 0),
        graph_updates=counters.get("graph_updates", 0),
        graph_evictions=counters.get("graph_evictions", 0),
        graph_rebuilds=counters.get("graph_rebuilds", 0),
    )
    return LoadedSnapshot(
        store=store,
        last_seq=int(meta["last_seq"]),
        users=int(meta["users"]),
        path=path,
        meta=meta,
    )


def prune_snapshots(directory, keep: int = 2) -> List[Path]:
    """Delete all but the ``keep`` newest snapshots (and stale temps)."""
    directory = Path(directory)
    removed: List[Path] = []
    if directory.is_dir():
        for tmp in directory.glob(f"{_SNAPSHOT_PREFIX}*{_SNAPSHOT_SUFFIX}.tmp"):
            tmp.unlink(missing_ok=True)
            removed.append(tmp)
    snapshots = list_snapshots(directory)
    for path in snapshots[:-keep] if keep > 0 else snapshots:
        path.unlink(missing_ok=True)
        removed.append(path)
    return removed
