"""``repro.serve`` — the unified inference and serving subsystem.

Entry points
------------
* :class:`PredictorResult` / :class:`PredictorProtocol` /
  :class:`PredictorBase` — the one inference contract TSPN-RA and all
  baselines conform to.  Rank semantics: an absent target ranks
  ``num_pois + 1`` (past the whole POI universe), never just past a
  restricted candidate list;
* :func:`save_checkpoint` / :func:`load_checkpoint` — persist a
  trained model (config + weights + dataset recipe) and reload it
  without retraining;
* :class:`Predictor` — the serving facade: cached shared embeddings,
  LRU-bounded per-user graph cache, and *vectorised* batched
  inference: every request batch is right-padded, masked, and encoded
  as one ``(batch, seq, dim)`` pass through the model's
  ``predict_batch`` (TSPN-RA's batched fusion/attention, the
  baselines' ``score_batch``), with per-batch p50/p95/p99 latency in
  :class:`ServeStats`;
* :func:`compare_throughput` — uncached vs cached-per-sample vs
  batched serving microbench (the batched leg reports latency
  percentiles).
"""

from .checkpoint import (
    CHECKPOINT_FORMAT,
    LoadedCheckpoint,
    load_checkpoint,
    save_checkpoint,
)
from .predictor import Predictor, ServeStats, compare_throughput
from .protocol import PredictorBase, PredictorProtocol, PredictorResult, rank_of_target

__all__ = [
    "CHECKPOINT_FORMAT",
    "LoadedCheckpoint",
    "Predictor",
    "PredictorBase",
    "PredictorProtocol",
    "PredictorResult",
    "ServeStats",
    "compare_throughput",
    "load_checkpoint",
    "rank_of_target",
    "save_checkpoint",
]
