"""repro.cluster: durable event-log persistence and multi-process serving.

Three layers on top of :mod:`repro.stream` and :mod:`repro.serve`:

* **Durability** (:mod:`.wal`, :mod:`.snapshot`, :mod:`.recovery`) — an
  append-only event log plus periodic store snapshots; recovery is
  "load newest snapshot, fold the log tail".
* **Process pool** (:mod:`.sharedmem`, :mod:`.worker`) — shard worker
  subprocesses wrapping :class:`~repro.serve.server.InferenceServer`,
  with checkpoint weights shared zero-copy through
  ``multiprocessing.shared_memory``.
* **Routing** (:mod:`.ring`, :mod:`.router`, :mod:`.frontend`) — a
  consistent-hash front-end that owns the worker pool, supervises
  heartbeats, and serves the same HTTP surface as the single-process
  tier.
"""

from .frontend import ClusterHttpFrontend
from .recovery import DurableIngest, RecoveryResult, recover_store
from .ring import HashRing
from .router import ClusterConfig, ClusterRouter
from .sharedmem import SharedWeights, assign_shared_parameters
from .worker import ShardError, ShardHandle, WorkerSpec
from .snapshot import (
    SNAPSHOT_FORMAT,
    SnapshotError,
    list_snapshots,
    load_snapshot,
    prune_snapshots,
    save_snapshot,
)
from .wal import (
    FSYNC_POLICIES,
    EventLogWriter,
    WalCorruptionError,
    list_segments,
    read_log,
    remove_dead_segments,
)

__all__ = [
    "DurableIngest",
    "RecoveryResult",
    "recover_store",
    "ClusterConfig",
    "ClusterHttpFrontend",
    "ClusterRouter",
    "HashRing",
    "ShardError",
    "ShardHandle",
    "WorkerSpec",
    "SharedWeights",
    "assign_shared_parameters",
    "SNAPSHOT_FORMAT",
    "SnapshotError",
    "list_snapshots",
    "load_snapshot",
    "prune_snapshots",
    "save_snapshot",
    "FSYNC_POLICIES",
    "EventLogWriter",
    "WalCorruptionError",
    "list_segments",
    "read_log",
    "remove_dead_segments",
]
