"""Table I — dataset statistics for the four synthetic presets.

Paper shape to reproduce: four datasets; TKY denser than NYC in a
smaller area; the two Weeplaces states cover ~1000x the urban area
with POIs dispersed across city clusters.
"""

from repro.experiments import format_table
from repro.experiments.tables import run_table1

HEADERS = [
    "Dataset",
    "Check-in",
    "User",
    "POI",
    "Category",
    "Coverage",
    "Trajectories",
    "MeanTrajLen",
    "LeafTiles",
]


def bench_table1(benchmark, profile, save_report):
    stats = benchmark.pedantic(run_table1, args=(profile,), rounds=1, iterations=1)
    report = format_table(HEADERS, [s.as_row() for s in stats], title="Table I — dataset statistics")
    save_report("table1", report)
    # shape assertions from the paper
    by_name = {s.name: s for s in stats}
    urban_density = by_name["tky"].checkins / by_name["tky"].coverage
    assert urban_density > by_name["california"].checkins / by_name["california"].coverage
    assert by_name["california"].coverage / by_name["nyc"].coverage > 500
