"""Loaders for real check-in data (Foursquare / Weeplaces style).

The reproduction ships a synthetic generator because the original
datasets are not redistributable, but the full pipeline runs unchanged
on real data.  This module parses the common LBSN interchange format —
one check-in per line:

    user_id <TAB> venue_id <TAB> category <TAB> latitude <TAB> longitude <TAB> timestamp

(`timestamp` is ISO-8601 or unix seconds; extra columns are ignored).
Venue/category/user identifiers are re-indexed to dense integers,
coordinates are projected to planar kilometres around the region's
centroid, and the result plugs into the same
:class:`~repro.data.datasets.Dataset` machinery the presets use.
"""

from __future__ import annotations

import datetime as _dt
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..geo import BoundingBox
from .checkin import Checkin, CheckinDataset
from .poi import POISet

_KM_PER_DEGREE_LAT = 111.32


@dataclass
class RawCheckin:
    """One parsed line of an LBSN file."""

    user: str
    venue: str
    category: str
    lat: float
    lon: float
    timestamp_hours: float


def _parse_timestamp(token: str) -> float:
    """ISO-8601 or unix seconds -> hours from epoch."""
    token = token.strip()
    try:
        return float(token) / 3600.0
    except ValueError:
        pass
    parsed = _dt.datetime.fromisoformat(token.replace("Z", "+00:00"))
    if parsed.tzinfo is None:
        parsed = parsed.replace(tzinfo=_dt.timezone.utc)
    return parsed.timestamp() / 3600.0


def parse_checkin_lines(lines: Iterable[str]) -> List[RawCheckin]:
    """Parse the tab-separated interchange format, skipping blanks/comments."""
    records: List[RawCheckin] = []
    for number, line in enumerate(lines, start=1):
        line = line.rstrip("\n")
        if not line or line.startswith("#"):
            continue
        parts = line.split("\t")
        if len(parts) < 6:
            raise ValueError(f"line {number}: expected >= 6 tab-separated fields")
        user, venue, category, lat, lon, stamp = parts[:6]
        records.append(
            RawCheckin(
                user=user,
                venue=venue,
                category=category,
                lat=float(lat),
                lon=float(lon),
                timestamp_hours=_parse_timestamp(stamp),
            )
        )
    return records


@dataclass
class LoadedCheckins:
    """Re-indexed check-ins with planar coordinates.

    ``pois.xy`` is in kilometres relative to the region's south-west
    corner; ``bbox`` covers every venue with a small margin.
    """

    pois: POISet
    checkins: CheckinDataset
    bbox: BoundingBox
    user_labels: List[str]
    venue_labels: List[str]

    @property
    def num_users(self) -> int:
        return len(self.user_labels)


def _project(lats: np.ndarray, lons: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Equirectangular projection to kilometres around the centroid."""
    lat0 = float(lats.mean())
    xs = (lons - lons.min()) * _KM_PER_DEGREE_LAT * math.cos(math.radians(lat0))
    ys = (lats - lats.min()) * _KM_PER_DEGREE_LAT
    return xs, ys


def load_checkins(
    source,
    min_user_checkins: int = 5,
    min_poi_checkins: int = 1,
) -> LoadedCheckins:
    """Load from a path or an iterable of lines.

    ``min_user_checkins`` drops near-empty users (a standard LBSN
    preprocessing step); ``min_poi_checkins`` optionally drops
    rarely-visited venues.  Note the paper explicitly does *not* filter
    infrequent POIs — keep ``min_poi_checkins=1`` to follow it.
    """
    if isinstance(source, (str, Path)):
        with open(source) as handle:
            raw = parse_checkin_lines(handle)
    else:
        raw = parse_checkin_lines(source)
    if not raw:
        raise ValueError("no check-ins parsed")

    user_counts: Dict[str, int] = {}
    venue_counts: Dict[str, int] = {}
    for record in raw:
        user_counts[record.user] = user_counts.get(record.user, 0) + 1
        venue_counts[record.venue] = venue_counts.get(record.venue, 0) + 1
    raw = [
        r
        for r in raw
        if user_counts[r.user] >= min_user_checkins
        and venue_counts[r.venue] >= min_poi_checkins
    ]
    if not raw:
        raise ValueError("all check-ins filtered out; lower the thresholds")

    venue_labels = sorted({r.venue for r in raw})
    user_labels = sorted({r.user for r in raw})
    category_labels = sorted({r.category for r in raw})
    venue_index = {v: i for i, v in enumerate(venue_labels)}
    user_index = {u: i for i, u in enumerate(user_labels)}
    category_index = {c: i for i, c in enumerate(category_labels)}

    venue_lat = np.zeros(len(venue_labels))
    venue_lon = np.zeros(len(venue_labels))
    venue_cat = np.zeros(len(venue_labels), dtype=np.int64)
    for record in raw:  # last write wins; venues are assumed static
        i = venue_index[record.venue]
        venue_lat[i] = record.lat
        venue_lon[i] = record.lon
        venue_cat[i] = category_index[record.category]

    xs, ys = _project(venue_lat, venue_lon)
    pois = POISet(np.column_stack([xs, ys]), venue_cat, category_names=category_labels)

    t0 = min(r.timestamp_hours for r in raw)
    checkins = CheckinDataset(
        [
            Checkin(
                user_id=user_index[r.user],
                poi_id=venue_index[r.venue],
                timestamp=r.timestamp_hours - t0,
            )
            for r in raw
        ]
    )
    margin_x = max(1e-6, 0.01 * (xs.max() - xs.min() + 1.0))
    margin_y = max(1e-6, 0.01 * (ys.max() - ys.min() + 1.0))
    bbox = BoundingBox(
        float(xs.min() - margin_x),
        float(ys.min() - margin_y),
        float(xs.max() + margin_x),
        float(ys.max() + margin_y),
    )
    return LoadedCheckins(
        pois=pois,
        checkins=checkins,
        bbox=bbox,
        user_labels=user_labels,
        venue_labels=venue_labels,
    )
