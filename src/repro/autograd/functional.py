"""Fused differentiable functions built on :class:`~repro.autograd.Tensor`.

These are the numerically careful versions of operations that would be
unstable or slow if composed from primitive ops (softmax family), plus a
handful of conveniences (masked attention scores, L2 normalisation,
cosine similarity) used throughout the TSPN-RA model and baselines.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .tensor import ArrayLike, Tensor, unbroadcast


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax with a fused backward pass."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    out = exp / exp.sum(axis=axis, keepdims=True)

    def grad_fn(g: np.ndarray) -> np.ndarray:
        dot = (g * out).sum(axis=axis, keepdims=True)
        return out * (g - dot)

    def kernel(buf, a):
        if buf is None or buf.shape != a.shape or buf.dtype != a.dtype:
            buf = np.empty_like(a)
        if a.dtype == np.float32 and axis in (-1, a.ndim - 1):
            # float32 plans are tolerance-verified, not bit-exact, so the
            # replay replaces the row-max shift (numpy's per-row reduce
            # dominates the whole step on short last axes) with a clip
            # to ±80: exp stays inside float32's normal range — no
            # overflow, no subnormals — and softmax is shift-invariant,
            # so results differ only at the 1e-7 level.  Fully-masked
            # rows (-1e9 everywhere) clip to a constant row and come
            # out uniform, exactly like the reference max-shift.
            # The row sum is a matmul for the same reduce-overhead
            # reason.
            np.clip(a, -80.0, 80.0, out=buf)
            np.exp(buf, out=buf)
            np.divide(
                buf, (buf @ np.ones(a.shape[-1], dtype=a.dtype))[..., None], out=buf
            )
            return buf
        # same max/sub/exp/div sequence as eager, but staged through the
        # plan's reused buffer: in-place placement changes where bytes
        # land, never their values, so float64 replay stays bit-identical
        np.subtract(a, a.max(axis=axis, keepdims=True), out=buf)
        np.exp(buf, out=buf)
        buf /= buf.sum(axis=axis, keepdims=True)
        return buf

    return Tensor._make(out, (x,), (grad_fn,), "softmax", kernel=kernel)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    log_sum = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out = shifted - log_sum
    soft = np.exp(out)

    def grad_fn(g: np.ndarray) -> np.ndarray:
        return g - soft * g.sum(axis=axis, keepdims=True)

    def kernel(buf, a):
        shifted = a - a.max(axis=axis, keepdims=True)
        log_sum = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
        return shifted - log_sum

    return Tensor._make(out, (x,), (grad_fn,), "log_softmax", kernel=kernel)


def cross_entropy(
    logits: Tensor, targets: np.ndarray, reduction: str = "mean"
) -> Tensor:
    """Negative log-likelihood for integer class targets.

    ``logits`` has shape ``(batch, classes)``; ``targets`` is an integer
    array of shape ``(batch,)``.  ``reduction`` is ``"mean"`` (the
    historic default), ``"sum"`` (what a batched training loss needs so
    it matches the summed per-sample losses), or ``"none"`` (the
    per-sample ``(batch,)`` loss vector).
    """
    targets = np.asarray(targets, dtype=np.int64)
    log_probs = log_softmax(logits, axis=-1)
    batch = logits.shape[0]
    picked = log_probs[np.arange(batch), targets]
    if reduction == "mean":
        return -(picked.mean())
    if reduction == "sum":
        return -(picked.sum())
    if reduction == "none":
        return -picked
    raise ValueError(f"unknown reduction {reduction!r}")


def dropout(x: Tensor, rate: float, rng: np.random.Generator, training: bool = True) -> Tensor:
    """Inverted dropout; identity when not training or rate == 0."""
    if not training or rate <= 0.0:
        return x
    keep = 1.0 - rate
    mask = (rng.random(x.shape) < keep).astype(x.dtype) / keep
    return x * Tensor(mask)


def l2_normalize(x: Tensor, axis: int = -1, eps: float = 1e-12) -> Tensor:
    """Normalise vectors along ``axis`` to unit L2 norm."""
    norm = ((x * x).sum(axis=axis, keepdims=True) + eps).sqrt()
    return x / norm


def cosine_similarity(a: Tensor, b: Tensor, axis: int = -1, eps: float = 1e-12) -> Tensor:
    """Cosine similarity along ``axis`` with broadcasting support."""
    return (l2_normalize(a, axis=axis, eps=eps) * l2_normalize(b, axis=axis, eps=eps)).sum(axis=axis)


def masked_fill(x: Tensor, mask: ArrayLike, value: float) -> Tensor:
    """Set entries of ``x`` where ``mask`` is true to ``value``.

    Gradients are blocked on the filled positions, which is exactly the
    behaviour required for additive attention masks.
    """
    mask = np.asarray(mask, dtype=bool)
    data = np.where(mask, value, x.data)

    def grad_fn(g: np.ndarray) -> np.ndarray:
        return unbroadcast(g * (~mask), x.shape)

    # Single-slot (source mask snapshot, its contiguous full-shape
    # broadcast) pair — the mask is a dynamic feed, so the broadcast can
    # only be reused when the incoming mask still *equals* the snapshot
    # (cheap: masks are small before broadcasting), never on shape
    # alone.  The pair lives in one slot so concurrent replay threads
    # read/write it atomically: a torn (snapshot from batch A, broadcast
    # from batch B) pairing can never be observed.
    mask_cache: list = [None]

    def kernel(out, a, m):
        # same selection as eager's np.where, staged through the reused
        # buffer when the mask broadcasts against a full-shaped input —
        # identical bytes, no per-step allocation.  copyto with a
        # contiguous full-shape mask beats np.where's fresh allocation
        # and strided broadcast walk.
        if m.shape != a.shape and np.broadcast_shapes(a.shape, m.shape) != a.shape:
            return np.where(m, value, a)
        if out is None or out.shape != a.shape or out.dtype != a.dtype:
            out = np.empty_like(a)
        if m.shape == a.shape:
            full = m
        else:
            cached = mask_cache[0]
            if (
                cached is not None
                and cached[1].shape == a.shape
                and cached[0].shape == m.shape
                and np.array_equal(cached[0], m)
            ):
                full = cached[1]
            else:
                full = np.ascontiguousarray(np.broadcast_to(m, a.shape))
                mask_cache[0] = (m.copy(), full)
        np.copyto(out, a)
        np.copyto(out, a.dtype.type(value), where=full)
        return out

    return Tensor._make(
        data, (x,), (grad_fn,), "masked_fill", kernel=kernel, extra=(mask,)
    )


def gather_rows(table: Tensor, indices: np.ndarray) -> Tensor:
    """Differentiable row lookup: the core of every embedding layer."""
    return table[np.asarray(indices, dtype=np.int64)]


def im2col(
    x: np.ndarray, kernel: int, stride: int, padding: int
) -> tuple:
    """Unfold ``(N, C, H, W)`` into convolution columns.

    Returns ``(cols, out_h, out_w)`` where ``cols`` has shape
    ``(N, C*kernel*kernel, out_h*out_w)``.
    """
    n, c, h, w = x.shape
    if padding:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    out_h = (h + 2 * padding - kernel) // stride + 1
    out_w = (w + 2 * padding - kernel) // stride + 1
    s0, s1, s2, s3 = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, out_h, out_w, kernel, kernel),
        strides=(s0, s1, s2 * stride, s3 * stride, s2, s3),
        writeable=False,
    )
    cols = windows.transpose(0, 1, 4, 5, 2, 3).reshape(n, c * kernel * kernel, out_h * out_w)
    return np.ascontiguousarray(cols), out_h, out_w


def col2im(
    cols: np.ndarray,
    x_shape: tuple,
    kernel: int,
    stride: int,
    padding: int,
    out_h: int,
    out_w: int,
) -> np.ndarray:
    """Adjoint of :func:`im2col`: scatter columns back onto the image."""
    n, c, h, w = x_shape
    padded = np.zeros((n, c, h + 2 * padding, w + 2 * padding), dtype=cols.dtype)
    cols = cols.reshape(n, c, kernel, kernel, out_h, out_w)
    for ki in range(kernel):
        i_max = ki + stride * out_h
        for kj in range(kernel):
            j_max = kj + stride * out_w
            padded[:, :, ki:i_max:stride, kj:j_max:stride] += cols[:, :, ki, kj, :, :]
    if padding:
        return padded[:, :, padding:-padding, padding:-padding]
    return padded


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    stride: int = 1,
    padding: int = 0,
    cols: Optional[np.ndarray] = None,
) -> Tensor:
    """2-D convolution via im2col.

    ``x``: ``(N, C, H, W)``; ``weight``: ``(O, C, K, K)``;
    ``bias``: ``(O,)`` or ``None``.  ``cols`` may carry a precomputed
    ``im2col(x.data, ...)`` result: the unfolding depends only on the
    input, so callers convolving a *static* input every step (the tile
    imagery encoder re-embeds the same tile set each training batch)
    can cache it and skip the unfold + copy.
    """
    n, c, h, w = x.shape
    o, c_w, kh, kw = weight.shape
    if c != c_w or kh != kw:
        raise ValueError("weight shape incompatible with input")
    kernel = kh
    if cols is None:
        cols, out_h, out_w = im2col(x.data, kernel, stride, padding)
    else:
        out_h = (h + 2 * padding - kernel) // stride + 1
        out_w = (w + 2 * padding - kernel) // stride + 1
    # (o, k) @ (n, k, p) broadcasts the weight matrix over the batch and
    # runs one BLAS gemm per image — numpy's einsum kernel for the same
    # contraction is a naive loop and several times slower on this
    # per-training-batch hot path (E_T is re-encoded every step).
    w_mat = weight.data.reshape(o, -1)
    out = np.matmul(w_mat, cols)
    if bias is not None:
        out = out + bias.data[None, :, None]
    out = out.reshape(n, o, out_h, out_w)

    x_shape = x.shape

    def grad_x(g: np.ndarray) -> np.ndarray:
        g_mat = g.reshape(n, o, out_h * out_w)
        dcols = np.matmul(w_mat.T, g_mat)
        return col2im(dcols, x_shape, kernel, stride, padding, out_h, out_w)

    def grad_w(g: np.ndarray) -> np.ndarray:
        # batched (o, p) @ (p, k) gemms on transposed views — BLAS
        # handles the swapped strides natively, so no 10+ MB copies
        g_mat = g.reshape(n, o, out_h * out_w)
        dw = np.matmul(g_mat, np.swapaxes(cols, 1, 2)).sum(axis=0)
        return dw.reshape(weight.shape)

    parents = [x, weight]
    grad_fns = [grad_x, grad_w]
    if bias is not None:
        parents.append(bias)
        grad_fns.append(lambda g: g.sum(axis=(0, 2, 3)))
    return Tensor._make(out, parents, grad_fns, "conv2d")
