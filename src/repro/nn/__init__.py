"""Neural-network layers built on the repro autograd engine."""

from .attention import MultiHeadAttention, SelfAttention, causal_mask, key_padding_mask
from .layers import (
    Conv2d,
    Dropout,
    Embedding,
    Flatten,
    LayerNorm,
    LeakyReLU,
    Linear,
    ReLU,
    Sigmoid,
    Tanh,
)
from .module import Module, ModuleList, Parameter, Sequential
from .rnn import GRU, GRUCell, LSTM, DilatedLSTM, LSTMCell

__all__ = [
    "Conv2d",
    "DilatedLSTM",
    "Dropout",
    "Embedding",
    "Flatten",
    "GRU",
    "GRUCell",
    "LSTM",
    "LSTMCell",
    "LayerNorm",
    "LeakyReLU",
    "Linear",
    "Module",
    "ModuleList",
    "MultiHeadAttention",
    "Parameter",
    "ReLU",
    "SelfAttention",
    "Sequential",
    "Sigmoid",
    "Tanh",
    "causal_mask",
    "key_padding_mask",
]
