"""Focused tests for the two-step prediction helpers."""

import numpy as np
import pytest

from repro.core.two_step import (
    candidate_pois,
    cosine_similarities,
    cosine_similarities_batch,
    rank_by_cosine,
    rank_of_target,
    rank_pois,
    rank_pois_batch,
    rank_tiles,
    rank_tiles_batch,
    select_tiles,
)


class _FakeTileSystem:
    def __init__(self, mapping):
        self._mapping = mapping

    def pois_in_leaf(self, leaf):
        return list(self._mapping.get(leaf, []))


class TestRanking:
    def test_rank_by_cosine_scale_invariant(self):
        out = np.array([2.0, 1.0])
        cands = np.random.default_rng(0).normal(size=(6, 2))
        a = rank_by_cosine(out, cands)
        b = rank_by_cosine(out * 100.0, cands * 0.01)
        assert np.array_equal(a, b)

    def test_rank_by_cosine_stable_on_ties(self):
        out = np.array([1.0, 0.0])
        cands = np.array([[2.0, 0.0], [2.0, 0.0]])  # identical rows: exact tie
        assert list(rank_by_cosine(out, cands)) == [0, 1]

    def test_select_tiles_top_k(self):
        out = np.array([1.0, 0.0])
        leaf_ids = [10, 20, 30]
        embeddings = np.array([[0.0, 1.0], [1.0, 0.0], [0.7, 0.7]])
        assert select_tiles(out, embeddings, leaf_ids, k=2) == [20, 30]

    def test_rank_tiles_full_list(self):
        out = np.array([1.0, 0.0])
        leaf_ids = [10, 20]
        embeddings = np.array([[0.0, 1.0], [1.0, 0.0]])
        assert rank_tiles(out, embeddings, leaf_ids) == [20, 10]


class TestCandidates:
    def test_candidate_pois_concatenates_in_tile_order(self):
        system = _FakeTileSystem({1: [5, 6], 2: [7]})
        assert candidate_pois(system, [2, 1]) == [7, 5, 6]

    def test_empty_tiles_yield_empty(self):
        system = _FakeTileSystem({})
        assert candidate_pois(system, [1, 2]) == []

    def test_rank_pois_empty_candidates(self):
        assert rank_pois(np.array([1.0, 0.0]), np.zeros((0, 2)), []) == []

    def test_rank_pois_orders_by_similarity(self):
        out = np.array([1.0, 0.0])
        ids = [100, 200]
        emb = np.array([[0.0, 1.0], [1.0, 0.0]])
        assert rank_pois(out, emb, ids) == [200, 100]


class TestRankOfTarget:
    def test_found(self):
        assert rank_of_target([4, 2, 9], 9) == 3

    def test_missing_is_len_plus_one(self):
        # legacy fallback, only valid for full-universe rankings
        assert rank_of_target([], 1) == 1  # |R|+1 with empty R
        assert rank_of_target([2, 3], 9) == 3

    def test_missing_with_universe_ranks_past_it(self):
        # a 2-item candidate list from a 1000-POI universe: a miss is
        # rank 1001, never a top-K hit
        assert rank_of_target([2, 3], 9, universe=1000) == 1001
        assert rank_of_target([], 9, universe=1000) == 1001

    def test_universe_irrelevant_when_found(self):
        assert rank_of_target([4, 2, 9], 9, universe=1000) == 3


class TestBatchedRanking:
    def test_cosine_similarities_batch_matches_rows(self):
        rng = np.random.default_rng(3)
        outputs = rng.normal(size=(5, 8))
        candidates = rng.normal(size=(11, 8))
        batched = cosine_similarities_batch(outputs, candidates)
        assert batched.shape == (5, 11)
        for i in range(5):
            np.testing.assert_allclose(
                batched[i], cosine_similarities(outputs[i], candidates), atol=1e-12
            )

    def test_rank_tiles_batch_matches_per_sample(self):
        rng = np.random.default_rng(4)
        outputs = rng.normal(size=(6, 8))
        leaves = rng.normal(size=(9, 8))
        leaf_ids = [10 * i for i in range(9)]
        batched = rank_tiles_batch(outputs, leaves, leaf_ids)
        assert batched == [rank_tiles(out, leaves, leaf_ids) for out in outputs]

    def test_rank_pois_batch_matches_per_sample(self):
        rng = np.random.default_rng(5)
        outputs = rng.normal(size=(4, 8))
        table = rng.normal(size=(20, 8))
        candidate_lists = [[3, 7, 1], [0, 19], [], list(range(20))]
        batched = rank_pois_batch(outputs, table, candidate_lists)
        expected = [
            rank_pois(out, table[np.asarray(c, dtype=np.int64)], list(c)) if c else []
            for out, c in zip(outputs, candidate_lists)
        ]
        assert batched == expected

    def test_rank_pois_batch_stable_on_ties(self):
        outputs = np.array([[1.0, 0.0]])
        table = np.array([[2.0, 0.0], [2.0, 0.0], [0.0, 1.0]])
        # both tied candidates keep their candidate-list order
        assert rank_pois_batch(outputs, table, [[1, 0, 2]]) == [[1, 0, 2]]
