"""Multi-head scaled dot-product attention.

Used by the TSPN-RA fusion modules (masked self-attention and cross
attention onto historical graph knowledge, paper Sec. V-A) and by the
attention-based baselines (DeepMove, STAN, STiSAN, SAE-NAD).

Sequences here are unbatched ``(length, dim)`` tensors; the training
loop iterates trajectories, which matches the paper's small batch sizes
and keeps variable-length handling trivial.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..autograd import Tensor, masked_fill, softmax
from ..utils.rng import default_rng
from .layers import Linear
from .module import Module

NEG_INF = -1e9


def causal_mask(length: int) -> np.ndarray:
    """Boolean mask that is True at positions a query must not attend to.

    Implements the paper's "inverted triangle" mask M_mask: position u
    may attend to positions v <= u only.
    """
    return np.triu(np.ones((length, length), dtype=bool), k=1)


class MultiHeadAttention(Module):
    """Scaled dot-product attention with ``num_heads`` heads.

    ``query``: ``(L_q, dim)``; ``key``/``value``: ``(L_k, dim)``.
    ``mask`` (optional): boolean ``(L_q, L_k)``, True = blocked.
    """

    def __init__(self, dim: int, num_heads: int = 4, rng=None):
        super().__init__()
        if dim % num_heads != 0:
            raise ValueError(f"dim {dim} not divisible by num_heads {num_heads}")
        rng = rng or default_rng()
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.w_q = Linear(dim, dim, rng=rng)
        self.w_k = Linear(dim, dim, rng=rng)
        self.w_v = Linear(dim, dim, rng=rng)
        self.w_o = Linear(dim, dim, rng=rng)

    def _split(self, x: Tensor, length: int) -> Tensor:
        # (L, dim) -> (heads, L, head_dim)
        return x.reshape(length, self.num_heads, self.head_dim).transpose(1, 0, 2)

    def forward(
        self,
        query: Tensor,
        key: Tensor,
        value: Tensor,
        mask: Optional[np.ndarray] = None,
    ) -> Tensor:
        l_q, l_k = query.shape[0], key.shape[0]
        q = self._split(self.w_q(query), l_q)
        k = self._split(self.w_k(key), l_k)
        v = self._split(self.w_v(value), l_k)

        scores = (q @ k.transpose(0, 2, 1)) * (1.0 / np.sqrt(self.head_dim))
        if mask is not None:
            scores = masked_fill(scores, mask[None, :, :], NEG_INF)
        weights = softmax(scores, axis=-1)
        attended = weights @ v  # (heads, L_q, head_dim)
        merged = attended.transpose(1, 0, 2).reshape(l_q, self.dim)
        return self.w_o(merged)


class SelfAttention(MultiHeadAttention):
    """Self-attention convenience wrapper (optionally causal)."""

    def __init__(self, dim: int, num_heads: int = 4, causal: bool = False, rng=None):
        super().__init__(dim, num_heads=num_heads, rng=rng)
        self.causal = causal

    def forward(self, x: Tensor, mask: Optional[np.ndarray] = None) -> Tensor:
        if self.causal:
            auto = causal_mask(x.shape[0])
            mask = auto if mask is None else (auto | mask)
        return super().forward(x, x, x, mask=mask)
