"""Check-in data substrate: records, windowing, synthesis, presets."""

from .checkin import Checkin, CheckinDataset, time_slot
from .datasets import Dataset, DatasetSpec, PRESET_NAMES, build_dataset, get_spec
from .poi import POI, POISet
from .splits import SplitSamples, make_samples, split_samples
from .stats import DatasetStats, compute_stats
from .synth import SynthConfig, SyntheticCity, UserProfile, generate_city
from .trajectory import (
    DEFAULT_GAP_HOURS,
    PredictionSample,
    Trajectory,
    Visit,
    concat_history,
    samples_from_trajectories,
    split_into_trajectories,
)

__all__ = [
    "Checkin",
    "CheckinDataset",
    "DEFAULT_GAP_HOURS",
    "Dataset",
    "DatasetSpec",
    "DatasetStats",
    "POI",
    "POISet",
    "PRESET_NAMES",
    "PredictionSample",
    "SplitSamples",
    "SynthConfig",
    "SyntheticCity",
    "Trajectory",
    "UserProfile",
    "Visit",
    "build_dataset",
    "compute_stats",
    "concat_history",
    "generate_city",
    "get_spec",
    "make_samples",
    "samples_from_trajectories",
    "split_into_trajectories",
    "split_samples",
    "time_slot",
]
