"""Attention-based embedding fusion, modules MP1 / MP2 (paper Sec. V-A).

Each of the N blocks applies:

1. masked sequential self-attention (inverted-triangle mask),
2. add & layer-normalise (ResNet shortcut),
3. cross attention: query = current sequence, key/value = historical
   graph knowledge (H_T◁ or H_P◁),
4. position-wise feed-forward with ReLU.

The output vector is the last position of the final sequence.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..autograd import Tensor, gather_at, gather_last, where
from ..nn import (
    Dropout,
    LayerNorm,
    Linear,
    Module,
    ModuleList,
    MultiHeadAttention,
    causal_mask,
)
from ..utils.rng import default_rng


class AttentionBlock(Module):
    """One fusion block AB_i(., .)."""

    def __init__(self, dim: int, num_heads: int, dropout: float = 0.1, rng=None):
        super().__init__()
        rng = rng or default_rng()
        self.self_attention = MultiHeadAttention(dim, num_heads, rng=rng)
        self.norm1 = LayerNorm(dim)
        self.cross_attention = MultiHeadAttention(dim, num_heads, rng=rng)
        self.norm2 = LayerNorm(dim)
        self.feed_forward = Linear(dim, dim, rng=rng)
        self.norm3 = LayerNorm(dim)
        self.drop = Dropout(dropout)

    def forward(self, sequence: Tensor, history: Optional[Tensor]) -> Tensor:
        length = sequence.shape[0]
        mask = causal_mask(length)
        attended = self.self_attention(sequence, sequence, sequence, mask=mask)
        sequence = self.norm1(sequence + self.drop(attended))
        if history is not None and history.shape[0] > 0:
            crossed = self.cross_attention(sequence, history, history)
            sequence = self.norm2(sequence + self.drop(crossed))
        forwarded = self.feed_forward(sequence).relu()
        return self.norm3(sequence + self.drop(forwarded))

    def forward_batch(
        self,
        sequence: Tensor,
        history: Optional[Tensor],
        history_mask: Optional[np.ndarray],
    ) -> Tensor:
        """Padded-batch variant: ``sequence`` is ``(B, L, dim)``.

        ``history`` is ``(B, H_max, dim)`` right-padded graph knowledge
        (or None when no sample in the batch has any); ``history_mask``
        is boolean ``(B, H_max)``, True at padded rows.  Right-padding
        plus the causal mask keeps real positions bit-compatible with
        the per-sample path: a real query can never attend to a padded
        key, and samples whose history is entirely padding keep their
        pre-cross-attention sequence exactly as ``forward`` would.
        """
        length = sequence.shape[1]
        causal = causal_mask(length)[None, None, :, :]
        if history is None:
            return self.forward_batch_core(sequence, causal, None, None, None)
        cross = np.asarray(history_mask, dtype=bool)[:, None, None, :]
        has_history = (~history_mask.all(axis=1))[:, None, None]  # (B, 1, 1)
        return self.forward_batch_core(sequence, causal, history, cross, has_history)

    def forward_batch_core(
        self,
        sequence: Tensor,
        causal: np.ndarray,
        history: Optional[Tensor],
        cross_mask: Optional[np.ndarray],
        has_history: Optional[np.ndarray],
    ) -> Tensor:
        """Trace-friendly block body: every mask arrives pre-broadcast.

        ``causal`` is ``(1, 1, L, L)``; ``cross_mask`` is
        ``(B, 1, 1, H)`` (True at padded knowledge rows); ``has_history``
        is ``(B, 1, 1)``.  No batch-dependent array is *derived* in
        here — they are all explicit arguments — so a captured plan
        links each one back to a feed.  Values are bit-identical to the
        pre-refactor inline math: masks broadcast to the same
        elementwise booleans.
        """
        attended = self.self_attention.forward_prepared(
            sequence, sequence, sequence, causal
        )
        sequence = self.norm1(sequence + self.drop(attended))
        if history is not None:
            crossed = self.cross_attention.forward_prepared(
                sequence, history, history, cross_mask
            )
            updated = self.norm2(sequence + self.drop(crossed))
            sequence = where(has_history, updated, sequence)
        forwarded = self.feed_forward(sequence).relu()
        return self.norm3(sequence + self.drop(forwarded))


class FusionModule(Module):
    """MP1 (tiles) / MP2 (POIs): N blocks, returns the last position."""

    def __init__(
        self, dim: int, num_heads: int = 4, num_layers: int = 2, dropout: float = 0.1, rng=None
    ):
        super().__init__()
        rng = rng or default_rng()
        self.blocks = ModuleList(
            [AttentionBlock(dim, num_heads, dropout=dropout, rng=rng) for _ in range(num_layers)]
        )

    def forward(self, sequence: Tensor, history: Optional[Tensor]) -> Tensor:
        """``sequence``: (L, dim); ``history``: (H, dim) or None.

        Returns h_out, shape ``(dim,)`` — the representation used for
        candidate ranking.
        """
        out = sequence
        for block in self.blocks:
            out = block(out, history)
        return out[out.shape[0] - 1]

    def forward_batch(
        self,
        sequence: Tensor,
        lengths: Sequence[int],
        history: Optional[Tensor] = None,
        history_mask: Optional[np.ndarray] = None,
    ) -> Tensor:
        """Padded-batch fusion: ``(B, L_max, dim)`` -> ``(B, dim)``.

        ``lengths`` gives each sample's real prefix length; the output
        row for sample b is position ``lengths[b] - 1`` of the final
        sequence — the same "last position" rule as :meth:`forward`.
        Fully differentiable: under gradient tracking the gather
        scatters upstream gradients back to each sample's last real
        position, so the batched training loss flows through here.
        """
        out = sequence
        for block in self.blocks:
            out = block.forward_batch(out, history, history_mask)
        return gather_last(out, lengths)

    def forward_batch_core(
        self,
        sequence: Tensor,
        positions: np.ndarray,
        causal: np.ndarray,
        history: Optional[Tensor] = None,
        cross_mask: Optional[np.ndarray] = None,
        has_history: Optional[np.ndarray] = None,
    ) -> Tensor:
        """Trace-friendly fusion: pre-broadcast masks, explicit gather.

        Mirrors :meth:`forward_batch` exactly (same blocks, same
        values) but takes ``positions`` (= ``lengths - 1``) and the
        pre-shaped masks of :meth:`AttentionBlock.forward_batch_core`
        directly, so the whole stage is a pure function of its array
        arguments — the property plan capture needs.
        """
        out = sequence
        for block in self.blocks:
            out = block.forward_batch_core(out, causal, history, cross_mask, has_history)
        return gather_at(out, positions)
