"""Tile-to-tile road adjacency (QR-P ``road`` edges, paper Sec. II-B).

Two leaf tiles are road-adjacent when some road segment passes from one
into the other.  Segments are rasterised by sampling points along their
length and mapping each sample to its leaf tile; consecutive distinct
tiles contribute an adjacency pair.  This reproduces the paper's fix
for quad-trees: small tiles that sit next to a large tile across a
granularity jump still exchange information if a road connects them.
"""

from __future__ import annotations

from typing import Optional, Set, Tuple

import numpy as np

from ..geo import euclidean
from ..spatial import RegionQuadTree
from .network import RoadNetwork


def tile_road_adjacency(
    tree,
    roads: RoadNetwork,
    sample_spacing: Optional[float] = None,
) -> Set[Tuple[int, int]]:
    """Set of unordered leaf-tile pairs linked by a road.

    ``tree`` may be a :class:`RegionQuadTree` or any index exposing
    ``leaves()``, ``leaf_for_point()``, ``bbox_of()`` and ``bbox``
    (:class:`~repro.spatial.GridIndex` qualifies, for the grid
    ablation).  ``sample_spacing`` defaults to half the smallest leaf
    side, which guarantees no traversed tile is skipped.
    """
    if sample_spacing is None:
        smallest = min(
            min(tree.bbox_of(leaf).width, tree.bbox_of(leaf).height)
            for leaf in tree.leaves()
        )
        sample_spacing = smallest / 2.0
    pairs: Set[Tuple[int, int]] = set()
    for (xa, ya), (xb, yb), _ in roads.segments():
        length = float(euclidean(xa, ya, xb, yb))
        steps = max(2, int(np.ceil(length / sample_spacing)) + 1)
        ts = np.linspace(0.0, 1.0, steps)
        previous = None
        for t in ts:
            x = xa + t * (xb - xa)
            y = ya + t * (yb - ya)
            if not tree.bbox.contains_closed(x, y):
                previous = None
                continue
            x, y = tree.bbox.clamp(x, y)
            leaf = tree.leaf_for_point(x, y)
            if previous is not None and leaf != previous:
                pairs.add((min(previous, leaf), max(previous, leaf)))
            previous = leaf
    return pairs
