"""Equivalence and regression tests for the batched training path.

The contract under test: ``loss_batch`` computes the *same objective*
as summing ``loss_sample`` over the mini-batch — same value at equal
weights, parameter gradients equal to floating-point accumulation
order, and (with dropout disabled, the one path-dependent RNG draw)
bit-identical training trajectories through the full Trainer + Adam
loop.
"""

import numpy as np
import pytest

from repro.autograd import Tensor, cross_entropy
from repro.baselines import make_baseline
from repro.core import TSPNRA, TSPNRAConfig
from repro.data import build_dataset, make_samples, split_samples
from repro.data.trajectory import PredictionSample, Visit
from repro.nn import Embedding, Linear, Module
from repro.serve.protocol import PredictorBase
from repro.train import TrainConfig, Trainer
from repro.utils import spawn

# dropout=0: dropout masks are drawn in path-dependent order (one big
# (B, L, dim) draw batched vs many small draws per sample), so it is
# excluded from equivalence checks — every other component must match.
CFG = dict(dim=16, fusion_layers=1, hgat_layers=1, top_k=4, num_heads=2, dropout=0.0)


@pytest.fixture(scope="module")
def tiny():
    dataset = build_dataset("nyc", seed=0, scale=0.12, imagery_resolution=16)
    splits = split_samples(make_samples(dataset, last_only=False), seed=0)
    locations = np.array(
        [dataset.spec.bbox.normalize(x, y) for x, y in dataset.city.pois.xy]
    )
    return dataset, splits, locations


def _mixed_batch(splits):
    """A batch exercising every edge: real histories (several samples
    sharing one), empty histories, and length-1 prefixes."""
    with_history = [s for s in splits.train if s.history]
    without = [s for s in splits.train if not s.history]
    length_one = next(s for s in splits.train if len(s.prefix) == 1)
    batch = with_history[:5] + without[:2] + [length_one]
    assert any(not s.history for s in batch)
    assert any(len(s.prefix) == 1 for s in batch)
    assert len({s.history_key for s in batch}) < len(batch)  # shared history
    return batch


def _grad_equivalence(model, batch, shared_fn, atol=1e-8):
    """Assert loss_batch gradients match summed loss_sample gradients."""
    total = None
    for sample in batch:
        loss = model.loss_sample(sample, *shared_fn())
        total = loss if total is None else total + loss
    total.backward()
    per_sample = {
        name: (None if p.grad is None else p.grad.copy())
        for name, p in model.named_parameters()
    }
    model.zero_grad()
    batched = model.loss_batch(batch, *shared_fn())
    assert batched.item() == pytest.approx(total.item(), rel=1e-10)
    batched.backward()
    for name, p in model.named_parameters():
        expected = per_sample[name]
        if expected is None and p.grad is None:
            continue
        assert p.grad is not None, f"batched path dropped gradient for {name}"
        expected = np.zeros_like(p.grad) if expected is None else expected
        np.testing.assert_allclose(
            p.grad, expected, atol=atol, rtol=0, err_msg=f"gradient mismatch: {name}"
        )


class TestGradientEquivalence:
    def test_tspnra(self, tiny):
        dataset, splits, _ = tiny
        model = TSPNRA.from_dataset(dataset, TSPNRAConfig(**CFG), rng=spawn(2))
        shared = model.compute_embeddings()
        _grad_equivalence(model, _mixed_batch(splits), lambda: shared)

    def test_tspnra_no_graph_ablation(self, tiny):
        dataset, splits, _ = tiny
        config = TSPNRAConfig(**CFG).variant(use_graph=False)
        model = TSPNRA.from_dataset(dataset, config, rng=spawn(3))
        shared = model.compute_embeddings()
        _grad_equivalence(model, _mixed_batch(splits), lambda: shared)

    def test_gru(self, tiny):
        dataset, splits, locations = tiny
        model = make_baseline("GRU", len(dataset.city.pois), locations, dim=16, rng=spawn(4))
        _grad_equivalence(model, _mixed_batch(splits), tuple)

    def test_hmt_grn(self, tiny):
        dataset, splits, locations = tiny
        model = make_baseline(
            "HMT-GRN", len(dataset.city.pois), locations, dim=16, rng=spawn(5)
        )
        _grad_equivalence(model, _mixed_batch(splits), tuple)

    def test_fallback_is_the_same_graph(self, tiny):
        """A baseline without a batched trunk uses the PredictorBase
        fallback: bit-identical to the per-sample path by construction."""
        dataset, splits, locations = tiny
        model = make_baseline(
            "DeepMove", len(dataset.city.pois), locations, dim=16, rng=spawn(6)
        )
        assert type(model).loss_batch is PredictorBase.loss_batch
        batch = _mixed_batch(splits)
        total = None
        for sample in batch:
            loss = model.loss_sample(sample)
            total = loss if total is None else total + loss
        assert model.loss_batch(batch).item() == total.item()

    @pytest.mark.parametrize("drop", ["road", "contain", "branch"])
    def test_drop_edge_ablations(self, tiny, drop):
        dataset, splits, _ = tiny
        config = TSPNRAConfig(**CFG).variant(drop_edge_type=drop)
        model = TSPNRA.from_dataset(dataset, config, rng=spawn(10))
        shared = model.compute_embeddings()
        _grad_equivalence(model, _mixed_batch(splits), lambda: shared)

    def test_edge_free_graph_matches_per_sample_identity(self, tiny):
        """A single-leaf history with contain edges dropped yields a
        graph with nodes but no edges; per-sample HGAT short-circuits
        it to the identity, and the packed path must agree instead of
        zeroing its knowledge rows."""
        from repro.data.trajectory import Trajectory

        dataset, splits, _ = tiny
        config = TSPNRAConfig(**CFG).variant(drop_edge_type="contain")
        model = TSPNRA.from_dataset(dataset, config, rng=spawn(11))
        leaf, pois = next(
            (leaf, model.tile_system.pois_in_leaf(leaf))
            for leaf in model.leaf_ids
            if len(model.tile_system.pois_in_leaf(leaf)) >= 2
        )
        donor = splits.train[0]
        crafted = PredictionSample(
            user_id=99,
            history=[
                Trajectory(user_id=99, visits=[Visit(p, float(i)) for i, p in enumerate(pois[:2])])
            ],
            prefix=donor.prefix,
            target=donor.target,
            history_key=(99, 0),
        )
        qrp, _ = model._qrp_for(crafted)
        assert not qrp.is_empty
        assert not any(qrp.graph.edges[kind] for kind in qrp.graph.edges)
        shared = model.compute_embeddings()
        batch = [crafted] + _mixed_batch(splits)[:4]
        _grad_equivalence(model, batch, lambda: shared)

    def test_packed_hgat_size_cap(self, tiny, monkeypatch):
        """Splitting the block-diagonal HGAT packs must not change the
        objective (large eval chunks hit this path)."""
        import repro.core.model as model_module

        dataset, splits, _ = tiny
        model = TSPNRA.from_dataset(dataset, TSPNRAConfig(**CFG), rng=spawn(12))
        batch = _mixed_batch(splits)
        shared = model.compute_embeddings()
        one_pack = model.loss_batch(batch, *shared).item()
        monkeypatch.setattr(model_module, "MAX_PACKED_NODES", 1)  # one graph per pack
        many_packs = model.loss_batch(batch, *shared).item()
        assert many_packs == pytest.approx(one_pack, rel=1e-10)

    def test_empty_batch_raises(self, tiny):
        dataset, _, locations = tiny
        model = make_baseline("GRU", len(dataset.city.pois), locations, dim=16, rng=spawn(7))
        with pytest.raises(ValueError):
            model.loss_batch([])
        tspnra = TSPNRA.from_dataset(dataset, TSPNRAConfig(**CFG), rng=spawn(8))
        with pytest.raises(ValueError):
            tspnra.loss_batch([], *tspnra.compute_embeddings())


class TestTrainerDeterminism:
    def _losses(self, dataset, splits, use_batched, seed=11):
        model = TSPNRA.from_dataset(dataset, TSPNRAConfig(**CFG), rng=spawn(7))
        config = TrainConfig(
            epochs=3,
            batch_size=8,
            lr=5e-3,
            max_train_samples=64,
            seed=seed,
            use_batched=use_batched,
        )
        return Trainer(model, config).fit(splits.train).epoch_losses

    def test_paths_bit_identical_and_deterministic(self, tiny):
        """Same seed => bit-identical epoch_losses, within each path
        (rerun) and *across* the batched / per-sample paths (dropout
        disabled; both paths then compute identical losses and
        gradients through the whole Adam trajectory)."""
        dataset, splits, _ = tiny
        batched = self._losses(dataset, splits, use_batched=True)
        assert self._losses(dataset, splits, use_batched=True) == batched
        per_sample = self._losses(dataset, splits, use_batched=False)
        assert self._losses(dataset, splits, use_batched=False) == per_sample
        assert batched == per_sample


class _CountingToy(Module):
    """Per-sample-only model: next-POI table lookup, no loss_batch."""

    requires_gradient_training = True

    def __init__(self, num_pois=6):
        super().__init__()
        self.table = Embedding(num_pois, 8, rng=spawn(0))
        self.head = Linear(8, num_pois, rng=spawn(1))
        self.sample_calls = 0

    def loss_sample(self, sample):
        self.sample_calls += 1
        emb = self.table(np.array([sample.prefix[-1].poi_id]))
        logits = self.head(emb[0])
        return cross_entropy(logits.reshape(1, -1), np.array([sample.target.poi_id]))


def _toy_samples(n=16):
    return [
        PredictionSample(
            user_id=0,
            history=[],
            prefix=[Visit(i % 6, float(i))],
            target=Visit((i + 1) % 6, float(i) + 0.5),
            history_key=(0, i),
        )
        for i in range(n)
    ]


class TestTrainerDispatch:
    def test_fallback_without_loss_batch(self):
        model = _CountingToy()
        trainer = Trainer(model, TrainConfig(epochs=1, batch_size=4))
        assert trainer.config.use_batched and not trainer.batched
        trainer.fit(_toy_samples())
        assert model.sample_calls == 16

    def test_escape_hatch_forces_per_sample(self, tiny):
        dataset, splits, locations = tiny
        model = make_baseline("GRU", len(dataset.city.pois), locations, dim=16, rng=spawn(9))
        calls = {"batch": 0}
        original = model.loss_batch

        def counting_loss_batch(samples, *shared):
            calls["batch"] += 1
            return original(samples, *shared)

        model.loss_batch = counting_loss_batch
        trainer = Trainer(
            model, TrainConfig(epochs=1, batch_size=8, max_train_samples=16, use_batched=False)
        )
        assert not trainer.batched
        trainer.fit(splits.train)
        assert calls["batch"] == 0

        batched_trainer = Trainer(
            model, TrainConfig(epochs=1, batch_size=8, max_train_samples=16, use_batched=True)
        )
        assert batched_trainer.batched
        batched_trainer.fit(splits.train)
        assert calls["batch"] == 2


class TestFitModeRestore:
    def test_restores_eval_mode(self):
        model = _CountingToy().eval()
        Trainer(model, TrainConfig(epochs=1, batch_size=4)).fit(_toy_samples(8))
        assert not model.training

    def test_keeps_train_mode(self):
        model = _CountingToy()
        assert model.training
        Trainer(model, TrainConfig(epochs=1, batch_size=4)).fit(_toy_samples(8))
        assert model.training

    def test_restores_mode_when_loss_raises(self):
        class Exploding(_CountingToy):
            def loss_sample(self, sample):
                raise RuntimeError("boom")

        model = Exploding().eval()
        with pytest.raises(RuntimeError):
            Trainer(model, TrainConfig(epochs=1, batch_size=4)).fit(_toy_samples(8))
        assert not model.training
