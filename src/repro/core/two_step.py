"""Two-step prediction: tile selection then POI ranking (paper Sec. V-B).

Step one ranks all leaf tiles by cosine similarity to the fused tile
vector h_out_tau; step two restricts POI candidates to the top-K tiles
and ranks them by cosine similarity to h_out_p.

The ``*_batch`` variants score a whole batch of fused output vectors
against the leaf/POI embedding tables with a single matmul — the
vectorised inference path — and then read each sample's ranking off
its own score row, so they produce exactly the per-sample orderings.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..serve.protocol import rank_of_target  # noqa: F401  (canonical home; re-exported)


def normalize_rows(candidates: np.ndarray) -> np.ndarray:
    """Rows scaled to unit L2 norm — the candidate half of every cosine.

    This is *the* normalisation expression used by all ranking paths;
    the compiled serving path hoists it per ``weights_version`` (the
    tables only change on reload), and sharing one function keeps the
    hoisted tables bit-identical to the per-batch eager computation.
    """
    return candidates / (np.linalg.norm(candidates, axis=1, keepdims=True) + 1e-12)


def cosine_similarities(output: np.ndarray, candidates: np.ndarray) -> np.ndarray:
    """cos(theta) between one output vector and each candidate row."""
    out_norm = output / (np.linalg.norm(output) + 1e-12)
    cand_norm = normalize_rows(candidates)
    return cand_norm @ out_norm


def rank_by_cosine(output: np.ndarray, candidates: np.ndarray) -> np.ndarray:
    """Indices of ``candidates`` rows sorted by descending cosine sim."""
    return np.argsort(-cosine_similarities(output, candidates), kind="stable")


def select_tiles(
    tile_output: np.ndarray,
    leaf_embeddings: np.ndarray,
    leaf_ids: Sequence[int],
    k: int,
) -> List[int]:
    """Step one: the top-K leaf tiles R_T[1:K]."""
    order = rank_by_cosine(tile_output, leaf_embeddings)
    return [leaf_ids[i] for i in order[:k]]


def rank_tiles(
    tile_output: np.ndarray,
    leaf_embeddings: np.ndarray,
    leaf_ids: Sequence[int],
) -> List[int]:
    """The full ranked tile list R_T."""
    order = rank_by_cosine(tile_output, leaf_embeddings)
    return [leaf_ids[i] for i in order]


def candidate_pois(tile_system, top_tiles: Sequence[int]) -> List[int]:
    """POIs located inside the top-K tiles (step-two candidate set)."""
    pois: List[int] = []
    for tile in top_tiles:
        pois.extend(tile_system.pois_in_leaf(tile))
    return pois


def rank_pois(
    poi_output: np.ndarray,
    poi_embeddings: np.ndarray,
    candidate_ids: Sequence[int],
) -> List[int]:
    """Step two: the ranked POI list R_P over the candidate set."""
    if len(candidate_ids) == 0:
        return []
    order = rank_by_cosine(poi_output, poi_embeddings)
    return [candidate_ids[i] for i in order]


# ----------------------------------------------------------------------
# batched variants (vectorised inference path)
# ----------------------------------------------------------------------
def cosine_similarities_batch(
    outputs: np.ndarray,
    candidates: np.ndarray,
    candidates_normalized: bool = False,
) -> np.ndarray:
    """cos(theta) between each output row and each candidate row.

    ``outputs``: ``(batch, dim)``; ``candidates``: ``(n, dim)``;
    returns ``(batch, n)`` — one matmul instead of a per-sample loop.
    ``candidates_normalized`` marks ``candidates`` as already being a
    :func:`normalize_rows` result (the compiled path's hoisted tables),
    skipping the per-batch renormalisation bit-identically.
    """
    out_norm = outputs / (np.linalg.norm(outputs, axis=1, keepdims=True) + 1e-12)
    cand_norm = candidates if candidates_normalized else normalize_rows(candidates)
    return out_norm @ cand_norm.T


def rank_tiles_batch(
    tile_outputs: np.ndarray,
    leaf_embeddings: np.ndarray,
    leaf_ids: Sequence[int],
    candidates_normalized: bool = False,
) -> List[List[int]]:
    """Step one for a batch: the full ranked tile list per sample."""
    scores = cosine_similarities_batch(
        tile_outputs, leaf_embeddings, candidates_normalized=candidates_normalized
    )
    orders = np.argsort(-scores, axis=1, kind="stable")
    # one fancy-index + tolist instead of a per-sample Python loop;
    # same ids in the same order
    leaf_array = np.asarray(leaf_ids, dtype=np.int64)
    return leaf_array[orders].tolist()


def rank_pois_batch(
    poi_outputs: np.ndarray,
    poi_embeddings: np.ndarray,
    candidate_lists: Sequence[Sequence[int]],
    candidates_normalized: bool = False,
) -> List[List[int]]:
    """Step two for a batch of per-sample candidate sets.

    One ``(batch, num_pois)`` matmul scores every output against the
    full POI table; each sample's ranking is then its candidate list
    stably re-ordered by its score row — identical to calling
    :func:`rank_pois` on the candidate subset, because cosine scores
    are row-independent.
    """
    scores = cosine_similarities_batch(
        poi_outputs, poi_embeddings, candidates_normalized=candidates_normalized
    )
    lengths = [len(c) for c in candidate_lists]
    width = max(lengths, default=0)
    if width == 0:
        return [[] for _ in candidate_lists]
    # One batched stable argsort instead of a per-row call: rows are
    # padded with -inf scores, which sort strictly after every real
    # entry under the descending key, and stability keeps the relative
    # order of the real entries — so each trimmed row is exactly the
    # per-row ``argsort(-row[candidates], kind="stable")`` result.
    rows = len(candidate_lists)
    cand_matrix = np.zeros((rows, width), dtype=np.int64)
    for i, candidates in enumerate(candidate_lists):
        if lengths[i]:
            cand_matrix[i, : lengths[i]] = candidates
    padded_scores = np.take_along_axis(scores, cand_matrix, axis=1)
    pad = np.arange(width)[None, :] >= np.asarray(lengths, dtype=np.int64)[:, None]
    padded_scores[pad] = -np.inf
    orders = np.argsort(-padded_scores, axis=1, kind="stable")
    ranked = np.take_along_axis(cand_matrix, orders, axis=1)
    return [row[:n].tolist() for row, n in zip(ranked, lengths)]


