"""Runners for the paper's empirical figures (8, 10, 11, 12).

Figures 1-7 and 9 are architecture illustrations; they have no data
series to regenerate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core import TSPNRA, spatial_encoding
from ..core.two_step import candidate_pois, rank_of_target
from ..data.trajectory import PredictionSample
from ..eval import evaluate
from ..eval.metrics import recall_at_k
from .harness import (
    PreparedData,
    build_model,
    eval_model,
    make_predictor,
    prepare,
    run_one,
    train_model,
    tspnra_config,
)
from .profile import ExperimentProfile


# ----------------------------------------------------------------------
# Figure 8 — spatial-encoding cosine similarity
# ----------------------------------------------------------------------
@dataclass
class Fig8Result:
    """Similarity fields around the paper's two anchor points."""

    anchors: List[Tuple[float, float]]
    grid: np.ndarray  # (G, 2) sample coordinates
    similarities: List[np.ndarray]  # one (G,) field per anchor
    distance_similarity_corr: List[float]  # should be strongly negative

    def peak_is_anchor(self) -> bool:
        """The most similar grid point should be the one nearest the anchor."""
        for anchor, sims in zip(self.anchors, self.similarities):
            nearest = np.argmin(((self.grid - anchor) ** 2).sum(axis=1))
            if np.argmax(sims) != nearest:
                return False
        return True


def run_fig8(
    dim: int = 512,
    scale: float = 100.0,
    resolution: int = 21,
    anchors: Sequence[Tuple[float, float]] = ((0.42, 0.38), (0.88, 0.76)),
) -> Fig8Result:
    """Cosine similarity between anchor encodings and a unit-square grid.

    Reproduces paper Fig. 8: proximity in space implies high cosine
    similarity of the Eq. 4 codes.
    """
    xs = np.linspace(0.0, 1.0, resolution)
    grid = np.array([(x, y) for y in xs for x in xs])
    grid_codes = spatial_encoding(grid, dim, scale=scale)
    grid_codes /= np.linalg.norm(grid_codes, axis=1, keepdims=True)
    similarities = []
    corrs = []
    for anchor in anchors:
        code = spatial_encoding(np.array([anchor]), dim, scale=scale)[0]
        code /= np.linalg.norm(code)
        sims = grid_codes @ code
        similarities.append(sims)
        distances = np.sqrt(((grid - anchor) ** 2).sum(axis=1))
        corrs.append(float(np.corrcoef(distances, sims)[0, 1]))
    return Fig8Result(
        anchors=list(anchors),
        grid=grid,
        similarities=similarities,
        distance_similarity_corr=corrs,
    )


# ----------------------------------------------------------------------
# Figure 10 — parameter tuning
# ----------------------------------------------------------------------
@dataclass
class SweepPoint:
    value: float
    metrics: Dict[str, float]


def run_fig10(
    profile: ExperimentProfile,
    dataset_name: str = "nyc",
    k_values: Sequence[int] = (2, 5, 10, 20),
    dim_values: Sequence[int] = (16, 32, 64),
    lr_values: Sequence[float] = (2e-4, 2e-3, 2e-2),
    batch_values: Sequence[int] = (1, 8, 16),
) -> Dict[str, List[SweepPoint]]:
    """Parameter sensitivity sweeps (training-time K, d_m, lr, batch size).

    The paper's findings to reproduce: K below ~10 hurts (too few
    negatives for the POI step), d_m matters little, lr has an interior
    optimum, batch size is stable.
    """
    data = prepare(dataset_name, profile)
    sweeps: Dict[str, List[SweepPoint]] = {"K": [], "dim": [], "lr": [], "batch": []}

    for k in k_values:
        config = tspnra_config(profile, data.dataset, top_k=k)
        metrics, _ = run_one("TSPN-RA", data, profile, config=config)
        sweeps["K"].append(SweepPoint(value=float(k), metrics=metrics))

    for dim in dim_values:
        config = tspnra_config(profile, data.dataset, dim=dim)
        metrics, _ = run_one("TSPN-RA", data, profile, config=config)
        sweeps["dim"].append(SweepPoint(value=float(dim), metrics=metrics))

    from dataclasses import replace

    for lr in lr_values:
        metrics, _ = run_one("TSPN-RA", data, replace(profile, lr=lr))
        sweeps["lr"].append(SweepPoint(value=float(lr), metrics=metrics))

    for batch in batch_values:
        metrics, _ = run_one("TSPN-RA", data, replace(profile, batch_size=batch))
        sweeps["batch"].append(SweepPoint(value=float(batch), metrics=metrics))
    return sweeps


# ----------------------------------------------------------------------
# Figure 11 — interaction between the two steps
# ----------------------------------------------------------------------
@dataclass
class Fig11Point:
    """One inference-time K setting."""

    k: int
    tile_accuracy: float  # fraction of targets whose tile ranks <= K
    poi_recall5: float
    mean_candidates: float  # size of the step-two candidate set
    tile_selection_rate: float  # leaves / K    (difficulty of step one)
    poi_selection_rate: float  # candidates / 5 (difficulty of step two)


def run_fig11(
    profile: ExperimentProfile,
    dataset_name: str = "nyc",
    max_power: int = 9,
) -> List[Fig11Point]:
    """Sweep inference-time K in powers of two (paper samples 1..320).

    Expected shape: tile accuracy rises monotonically with K; POI
    Recall@5 peaks at moderate K then flattens/declines; candidate count
    grows ~exponentially; the two selection-rate curves cross near the
    Recall@5 peak.
    """
    data = prepare(dataset_name, profile)
    metrics, model = run_one("TSPN-RA", data, profile)
    test = data.splits.test
    if profile.eval_samples is not None:
        test = test[: profile.eval_samples]

    num_leaves = len(model.leaf_ids)
    ks = sorted({min(2 ** p, num_leaves) for p in range(max_power + 1)})
    points: List[Fig11Point] = []
    # Cache per-sample tile rankings once (shared embeddings computed a
    # single time by the serving facade); re-rank POIs per K below.
    predictor = make_predictor(model)
    per_sample = list(zip(test, predictor.predict_batch(test, k=num_leaves)))
    for k in ks:
        tile_hits, poi_ranks, candidate_counts = [], [], []
        for sample, full in per_sample:
            tile_hits.append(full.tile_rank <= k)
            top = full.ranked_tiles[:k]
            candidates = candidate_pois(model.tile_system, top)
            candidate_counts.append(len(candidates))
            # re-rank the cached full POI list restricted to candidates;
            # a target outside them ranks past the whole POI universe,
            # not just past the (possibly tiny) candidate list
            allowed = set(candidates)
            restricted = [p for p in full.ranked_pois if p in allowed]
            poi_ranks.append(
                rank_of_target(restricted, sample.target.poi_id, universe=model.num_pois)
            )
        mean_candidates = float(np.mean(candidate_counts))
        points.append(
            Fig11Point(
                k=k,
                tile_accuracy=float(np.mean(tile_hits)),
                poi_recall5=recall_at_k(poi_ranks, 5),
                mean_candidates=mean_candidates,
                tile_selection_rate=num_leaves / k,
                poi_selection_rate=mean_candidates / 5.0,
            )
        )
    return points


def fig11_crossover(points: List[Fig11Point]) -> Optional[int]:
    """K where the two selection-rate curves cross (paper Fig. 11c)."""
    for a, b in zip(points, points[1:]):
        if (a.tile_selection_rate - a.poi_selection_rate) >= 0 >= (
            b.tile_selection_rate - b.poi_selection_rate
        ):
            return b.k
    return None


# ----------------------------------------------------------------------
# Figure 12 — coastal case study
# ----------------------------------------------------------------------
@dataclass
class CaseStudyResult:
    """Top-50 recommendation geography for one coastal sample."""

    model_name: str
    coastal_fraction: float  # of the top-50 POIs in the coastal band
    mean_distance_to_target: float  # of the top-50, in map units
    target_in_top50: bool


def _coastal_sample(data: PreparedData, band_width: float) -> Optional[PredictionSample]:
    """A test sample whose target lies in the coastal band and whose
    prefix is mostly coastal (the paper's east-coast Florida user)."""
    land_use = data.dataset.city.land_use
    pois = data.dataset.city.pois
    best, best_score = None, -1.0
    for sample in data.splits.test:
        tx, ty = pois.location_of(sample.target.poi_id)
        if not land_use.coastal_band(tx, ty, band_width):
            continue
        prefix_coastal = np.mean(
            [
                land_use.coastal_band(*pois.location_of(v.poi_id), band_width)
                for v in sample.prefix
            ]
        )
        if prefix_coastal > best_score:
            best, best_score = sample, prefix_coastal
    return best


def run_fig12(
    profile: ExperimentProfile,
    dataset_name: str = "florida",
    top_n: int = 50,
) -> Tuple[List[CaseStudyResult], Dict[str, float]]:
    """Compare top-50 POI geography for four systems (paper Fig. 12):

    (a) TSPN-RA, (b) TSPN-RA with 20% imagery noise, (c) TSPN-RA
    without tile filtering, (d) the strongest baseline LSTPM.

    Expected shape: (a) concentrates recommendations on the coast;
    (b) and (c) scatter them inland; (d) follows POI density, not the
    coastal context.
    """
    data = prepare(dataset_name, profile)
    noisy_data = prepare(dataset_name, profile, noise_fraction=0.2)
    band_width = 0.06 * data.dataset.spec.bbox.width
    sample = _coastal_sample(data, band_width)
    if sample is None:
        raise RuntimeError("no coastal test sample found; increase dataset scale")

    systems = []
    metrics_full, model_full = run_one("TSPN-RA", data, profile)
    systems.append(("TSPN-RA", model_full))
    _, model_noisy = run_one("TSPN-RA", noisy_data, profile)
    systems.append(("TSPN-RA (noisy imagery)", model_noisy))
    config_flat = tspnra_config(profile, data.dataset, use_two_step=False)
    _, model_flat = run_one("TSPN-RA", data, profile, config=config_flat)
    systems.append(("TSPN-RA (no tile filter)", model_flat))
    _, lstpm = run_one("LSTPM", data, profile)
    systems.append(("LSTPM", lstpm))

    land_use = data.dataset.city.land_use
    pois = data.dataset.city.pois
    tx, ty = pois.location_of(sample.target.poi_id)
    results: List[CaseStudyResult] = []
    for name, model in systems:
        prediction = model.predict(sample)
        top = prediction.ranked_pois[:top_n]
        coords = np.array([pois.location_of(p) for p in top]) if top else np.zeros((0, 2))
        coastal = [land_use.coastal_band(x, y, band_width) for x, y in coords]
        distance = np.sqrt(((coords - [tx, ty]) ** 2).sum(axis=1)) if len(top) else np.array([0.0])
        results.append(
            CaseStudyResult(
                model_name=name,
                coastal_fraction=float(np.mean(coastal)) if coastal else 0.0,
                mean_distance_to_target=float(distance.mean()),
                target_in_top50=sample.target.poi_id in top,
            )
        )
    return results, metrics_full
