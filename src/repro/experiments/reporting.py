"""Plain-text table rendering for experiment outputs.

All table/figure runners return structured dicts; these helpers print
them in the layout of the corresponding paper table so paper-vs-
measured comparison is a side-by-side read.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

METRIC_COLUMNS = (
    "Recall@5",
    "Recall@10",
    "Recall@20",
    "NDCG@5",
    "NDCG@10",
    "NDCG@20",
    "MRR",
)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[str]], title: str = "") -> str:
    """Fixed-width ASCII table."""
    rows = [list(map(str, r)) for r in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    rule = "-" * len(line)
    body = [line, rule]
    for row in rows:
        body.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    out = "\n".join(body)
    if title:
        out = f"{title}\n{rule}\n{out}"
    return out


def format_results(
    results: Mapping[str, Mapping[str, float]],
    columns: Sequence[str] = METRIC_COLUMNS,
    title: str = "",
    highlight: Optional[str] = None,
) -> str:
    """Render a {model: {metric: value}} mapping like paper Tables II-IV."""
    rows = []
    for model, metrics in results.items():
        marker = "*" if highlight and model == highlight else " "
        rows.append([f"{marker}{model}"] + [f"{metrics.get(c, float('nan')):.4f}" for c in columns])
    return format_table(["Model"] + list(columns), rows, title=title)


def improvement_row(
    ours: Mapping[str, float],
    best_baseline: Mapping[str, float],
    columns: Sequence[str] = METRIC_COLUMNS,
) -> Dict[str, str]:
    """Percentage improvement of ours over the best baseline per metric."""
    out = {}
    for column in columns:
        base = best_baseline.get(column, 0.0)
        if base <= 0:
            out[column] = "n/a"
        else:
            out[column] = f"{(ours[column] - base) / base * 100.0:+.2f}%"
    return out


def best_baseline(
    results: Mapping[str, Mapping[str, float]],
    exclude: str,
    column: str = "MRR",
) -> str:
    """Name of the strongest non-excluded model by one metric."""
    candidates = {m: v for m, v in results.items() if m != exclude}
    return max(candidates, key=lambda m: candidates[m].get(column, 0.0))


def relative_drop(ours: Mapping[str, float], ablated: Mapping[str, float], columns) -> float:
    """Mean relative metric change of an ablation vs the full model (Table IV impro@avg)."""
    drops = []
    for column in columns:
        full_value = ours.get(column, 0.0)
        if full_value > 0:
            drops.append((ablated.get(column, 0.0) - full_value) / full_value)
    return 100.0 * (sum(drops) / len(drops)) if drops else 0.0
