"""Heterogeneous graph container.

Implements the typed-node / typed-edge structure of Definition II-B:
node types ``{POI, tile}`` and edge types ``{branch, road, contain}``.
Storage is adjacency-list per edge type, which is what the HGAT layer
(Eq. 6) consumes: for node i and edge type k it needs N_k(i).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

NODE_TYPES = ("tile", "poi")
EDGE_TYPES = ("branch", "road", "contain")


@dataclass
class HeteroGraph:
    """Typed graph with local contiguous node indexing.

    ``node_types[i]`` is ``"tile"`` or ``"poi"``; ``node_refs[i]`` holds
    the external id (quad-tree node id for tiles, POI id for POIs).
    Edges are stored per type as directed pairs; message passing treats
    them as symmetric, so :meth:`add_edge` inserts both directions
    unless told otherwise.
    """

    node_types: List[str] = field(default_factory=list)
    node_refs: List[int] = field(default_factory=list)
    edges: Dict[str, List[Tuple[int, int]]] = field(
        default_factory=lambda: {t: [] for t in EDGE_TYPES}
    )
    _index_of: Dict[Tuple[str, int], int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, node_type: str, ref: int) -> int:
        """Add (or find) a node; returns its local index."""
        if node_type not in NODE_TYPES:
            raise ValueError(f"unknown node type {node_type!r}")
        key = (node_type, ref)
        if key in self._index_of:
            return self._index_of[key]
        index = len(self.node_types)
        self.node_types.append(node_type)
        self.node_refs.append(ref)
        self._index_of[key] = index
        return index

    def add_edge(self, edge_type: str, src: int, dst: int, symmetric: bool = True) -> None:
        if edge_type not in EDGE_TYPES:
            raise ValueError(f"unknown edge type {edge_type!r}")
        n = len(self.node_types)
        if not (0 <= src < n and 0 <= dst < n):
            raise IndexError("edge endpoint out of range")
        self.edges[edge_type].append((src, dst))
        if symmetric:
            self.edges[edge_type].append((dst, src))

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self.node_types)

    def num_edges(self, edge_type: Optional[str] = None) -> int:
        if edge_type is None:
            return sum(len(e) for e in self.edges.values())
        return len(self.edges[edge_type])

    def index_of(self, node_type: str, ref: int) -> Optional[int]:
        return self._index_of.get((node_type, ref))

    def nodes_of_type(self, node_type: str) -> List[int]:
        return [i for i, t in enumerate(self.node_types) if t == node_type]

    def neighbors(self, edge_type: str, node: int) -> List[int]:
        """N_k(i): neighbours of ``node`` along edges of one type."""
        return [dst for src, dst in self.edges[edge_type] if src == node]

    def adjacency_lists(self, edge_type: str) -> Dict[int, List[int]]:
        """dst-grouped adjacency for one edge type (HGAT's view)."""
        table: Dict[int, List[int]] = {}
        for src, dst in self.edges[edge_type]:
            table.setdefault(dst, []).append(src)
        return table

    def validate(self) -> None:
        """Check Definition II-B typing constraints; raises on violation."""
        for src, dst in self.edges["branch"]:
            if not (self.node_types[src] == "tile" and self.node_types[dst] == "tile"):
                raise ValueError("branch edges must connect tile-tile")
        for src, dst in self.edges["road"]:
            if not (self.node_types[src] == "tile" and self.node_types[dst] == "tile"):
                raise ValueError("road edges must connect tile-tile")
        for src, dst in self.edges["contain"]:
            types = {self.node_types[src], self.node_types[dst]}
            if types != {"tile", "poi"}:
                raise ValueError("contain edges must connect tile-poi")
