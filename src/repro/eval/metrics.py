"""Ranking metrics: Recall@K, NDCG@K, MRR (paper Sec. VI-A).

All three are computed from the 1-based rank of the ground-truth item
in the generated list.  With a single relevant item per query, NDCG@K
reduces to ``1 / log2(rank + 1)`` when the item is ranked within K.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

import numpy as np

DEFAULT_KS = (5, 10, 20)


def recall_at_k(ranks: Sequence[int], k: int) -> float:
    """Hit rate: fraction of queries whose target rank is <= k."""
    ranks = np.asarray(ranks)
    if ranks.size == 0:
        return 0.0
    return float((ranks <= k).mean())


def ndcg_at_k(ranks: Sequence[int], k: int) -> float:
    """Single-relevant-item NDCG."""
    ranks = np.asarray(ranks, dtype=np.float64)
    if ranks.size == 0:
        return 0.0
    gains = np.where(ranks <= k, 1.0 / np.log2(ranks + 1.0), 0.0)
    return float(gains.mean())


def mrr(ranks: Sequence[int]) -> float:
    """Mean reciprocal rank."""
    ranks = np.asarray(ranks, dtype=np.float64)
    if ranks.size == 0:
        return 0.0
    return float((1.0 / ranks).mean())


def metric_table(ranks: Sequence[int], ks: Iterable[int] = DEFAULT_KS) -> Dict[str, float]:
    """The full metric row used by every results table."""
    table: Dict[str, float] = {}
    for k in ks:
        table[f"Recall@{k}"] = recall_at_k(ranks, k)
    for k in ks:
        table[f"NDCG@{k}"] = ndcg_at_k(ranks, k)
    table["MRR"] = mrr(ranks)
    return table
