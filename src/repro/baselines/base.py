"""Shared machinery for the ten baseline models (paper Sec. VI-A).

Every baseline is a faithful-in-mechanism, scaled-to-substrate
re-implementation: it keeps the architectural component the paper
credits (or blames) for the original model's behaviour, on top of the
same autograd engine TSPN-RA uses, so efficiency and effectiveness
comparisons are apples-to-apples.

All baselines conform to the serve-wide
:class:`~repro.serve.protocol.PredictorProtocol`:

* ``score(sample) -> Tensor``: logits over the full POI vocabulary;
* ``score_batch(samples) -> ndarray``: ``(batch, num_pois)`` logits —
  the default loops ``score``; sequential baselines with a batchable
  trunk override it on top of ``SequenceEmbedder.forward_batch``;
* ``loss_sample(sample)``: cross-entropy against the true next POI;
* ``loss_batch(samples)``: *summed* cross-entropy over one mini-batch
  — the default (inherited from ``PredictorBase``) sums
  ``loss_sample``; baselines with a batchable trunk (GRU, HMT-GRN)
  override it with one padded differentiable pass;
* ``predict(sample, *shared) -> PredictorResult`` /
  ``predict_batch(samples, *shared)``: full ranked POI list(s)
  (shared state is empty for baselines and ignored);
* ``score_candidates(sample, ids, *shared)``: logits restricted to a
  candidate set.

Count-based models (MC) implement ``fit(samples)`` instead of
gradient training; the experiment harness dispatches on
``requires_gradient_training``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..autograd import Tensor, cross_entropy, gather_last, no_grad
from ..data.trajectory import PredictionSample
from ..nn import Embedding, Module
from ..serve.protocol import PredictorBase, PredictorResult, target_poi_of
from ..utils.rng import default_rng

# The historic baseline-only result type is now the serve-wide one.
BaselineResult = PredictorResult


class NextPOIBaseline(Module, PredictorBase):
    """Base class for gradient-trained baselines."""

    name = "baseline"
    requires_gradient_training = True

    def __init__(self, num_pois: int, dim: int, rng=None):
        super().__init__()
        self.num_pois = num_pois
        self.dim = dim
        self._rng = rng or default_rng()

    # Subclasses implement score(); everything else is shared.
    def score(self, sample: PredictionSample) -> Tensor:
        raise NotImplementedError

    def score_batch(self, samples: Sequence[PredictionSample]) -> np.ndarray:
        """Logits over the full vocabulary per sample: ``(batch, num_pois)``.

        The fallback stacks per-sample ``score`` calls; baselines whose
        trunk vectorises (GRU) override this with a true batched pass.
        Overrides must reproduce the per-sample logits row for row.
        """
        return np.stack([self.score(sample).data for sample in samples])

    def loss_sample(self, sample: PredictionSample) -> Tensor:
        logits = self.score(sample)
        return cross_entropy(logits.reshape(1, -1), np.array([sample.target.poi_id]))

    def predict(
        self, sample: PredictionSample, *shared, k: Optional[int] = None
    ) -> PredictorResult:
        with no_grad():
            logits = self.score(sample).data
        order = np.argsort(-logits, kind="stable")
        return PredictorResult(
            ranked_pois=[int(i) for i in order],
            target_poi=target_poi_of(sample),
            num_pois=self.num_pois,
        )

    def predict_batch(
        self, samples: Sequence[PredictionSample], *shared, k: Optional[int] = None
    ) -> List[PredictorResult]:
        """One ``score_batch`` pass, one row-wise stable argsort."""
        if not samples:
            return []
        with no_grad():
            logits = self.score_batch(samples)
        orders = np.argsort(-logits, axis=1, kind="stable")
        return [
            PredictorResult(
                ranked_pois=[int(i) for i in order],
                target_poi=target_poi_of(sample),
                num_pois=self.num_pois,
            )
            for order, sample in zip(orders, samples)
        ]

    def score_candidates(
        self, sample: PredictionSample, candidate_ids: Sequence[int], *shared
    ) -> np.ndarray:
        with no_grad():
            logits = self.score(sample).data
        return logits[np.asarray(candidate_ids, dtype=np.int64)]


class SequenceEmbedder(Module):
    """POI-id + time-slot embedding shared by the sequential baselines."""

    def __init__(self, num_pois: int, dim: int, use_time: bool = True, rng=None):
        super().__init__()
        from ..data.checkin import SLOTS_PER_DAY, time_slot

        rng = rng or default_rng()
        self._slot_fn = time_slot
        self.poi_table = Embedding(num_pois, dim, rng=rng)
        self.use_time = use_time
        if use_time:
            self.time_table = Embedding(SLOTS_PER_DAY, dim, rng=rng)

    def forward(self, sample_or_visits) -> Tensor:
        visits = (
            sample_or_visits.prefix
            if isinstance(sample_or_visits, PredictionSample)
            else sample_or_visits
        )
        ids = np.array([v.poi_id for v in visits], dtype=np.int64)
        out = self.poi_table(ids)
        if self.use_time:
            slots = np.array([self._slot_fn(v.timestamp) for v in visits], dtype=np.int64)
            out = out + self.time_table(slots)
        return out

    def forward_batch(
        self, samples: Sequence[PredictionSample]
    ) -> Tuple[Tensor, np.ndarray]:
        """Right-padded batch embedding: ``((batch, L_max, dim), lengths)``.

        Padded slots embed POI/slot 0; they sit past each sample's real
        length, so batched consumers that respect ``lengths`` (RNN
        last-state gather, causal attention) never read them.
        """
        lengths = np.asarray([len(s.prefix) for s in samples], dtype=np.int64)
        l_max = int(lengths.max())
        ids = np.zeros((len(samples), l_max), dtype=np.int64)
        slots = np.zeros((len(samples), l_max), dtype=np.int64)
        for i, sample in enumerate(samples):
            ids[i, : lengths[i]] = [v.poi_id for v in sample.prefix]
            if self.use_time:
                slots[i, : lengths[i]] = [
                    self._slot_fn(v.timestamp) for v in sample.prefix
                ]
        out = self.poi_table(ids)
        if self.use_time:
            out = out + self.time_table(slots)
        return out, lengths


def last_hidden_batch(
    embedder: SequenceEmbedder, rnn, samples: Sequence[PredictionSample]
) -> Tensor:
    """Batched RNN trunk: each sample's hidden state at its real last step.

    Runs one padded batch through ``rnn`` and gathers the output at
    ``lengths - 1`` per sample — exact because the RNN is causal:
    hidden states keep evolving through padded steps for shorter
    samples, but the gathered position was computed from real inputs
    only.  The gather (:func:`repro.autograd.gather_last`) stays on
    the autograd graph, so the same trunk serves inference
    (``score_batch``/``predict_batch`` run it under ``no_grad``) and
    the batched training loss (``loss_batch``); padded steps sit past
    the gathered position and therefore receive no gradient.
    """
    sequence, lengths = embedder.forward_batch(samples)
    if lengths.min() < 1:
        # per-sample scoring fails loudly on an empty prefix; a -1
        # gather here would silently rank from pad-token hidden states
        raise ValueError("last_hidden_batch needs non-empty prefixes")
    outputs, _ = rnn(sequence)  # (B, L_max, hidden)
    return gather_last(outputs, lengths)
