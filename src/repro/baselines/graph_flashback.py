"""Graph-Flashback baseline [Rao et al., SIGKDD 2022; ref 13].

Two defining mechanisms, both kept:

* a POI transition knowledge graph built from training trajectories,
  whose normalised adjacency *smooths* the POI embedding table (the
  simplified-GCN enrichment step);
* the Flashback aggregation — hidden states of past steps are combined
  with weights that decay with temporal gap and spatial distance,
  instead of only using the last RNN state.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from ..autograd import Tensor
from ..data.trajectory import PredictionSample
from ..nn import GRU, Embedding, Linear
from ..utils.rng import default_rng
from .base import NextPOIBaseline


class GraphFlashback(NextPOIBaseline):
    name = "Graph-Flashback"

    def __init__(
        self,
        num_pois: int,
        locations: np.ndarray,
        dim: int = 64,
        time_decay: float = 0.1,
        space_decay: float = 10.0,
        rng=None,
    ):
        super().__init__(num_pois, dim, rng=rng)
        rng = rng or default_rng()
        self.locations = np.asarray(locations, dtype=np.float64)
        self.time_decay = time_decay
        self.space_decay = space_decay
        self.poi_table = Embedding(num_pois, dim, rng=rng)
        self.rnn = GRU(dim, dim, rng=rng)
        self.out_proj = Linear(dim, dim, rng=rng)
        # Row-normalised transition matrix; identity until fitted so the
        # model degrades gracefully if the graph step is skipped.
        self._adjacency = np.eye(num_pois)

    def fit_transition_graph(self, samples: Sequence[PredictionSample]) -> None:
        """Build the user-POI transition graph from training chains."""
        counts = np.zeros((self.num_pois, self.num_pois))
        for sample in samples:
            chain = sample.prefix_poi_ids + [sample.target.poi_id]
            for src, dst in zip(chain, chain[1:]):
                counts[src, dst] += 1.0
        counts = counts + counts.T + np.eye(self.num_pois)  # symmetrise + self-loops
        degree = counts.sum(axis=1, keepdims=True)
        self._adjacency = counts / degree

    # The fitted graph is inference state a checkpoint must carry.
    def extra_state(self) -> Dict[str, np.ndarray]:
        return {"adjacency": self._adjacency.copy()}

    def load_extra_state(self, state: Dict[str, np.ndarray]) -> None:
        state = dict(state)
        self._adjacency = np.asarray(state.pop("adjacency"), dtype=np.float64).copy()
        super().load_extra_state(state)  # reject anything unconsumed

    def _smoothed_table(self) -> Tensor:
        """Simplified-GCN propagation over the transition graph."""
        return Tensor(self._adjacency) @ self.poi_table.weight

    def score(self, sample: PredictionSample) -> Tensor:
        table = self._smoothed_table()
        ids = np.array(sample.prefix_poi_ids, dtype=np.int64)
        embedded = table[ids]
        states, _ = self.rnn(embedded)

        # Flashback: weight every past hidden state by recency & proximity
        times = np.array([v.timestamp for v in sample.prefix])
        now = times[-1]
        here = self.locations[ids[-1]]
        gaps = now - times
        dists = np.sqrt(((self.locations[ids] - here) ** 2).sum(axis=1))
        weights = np.exp(-self.time_decay * gaps) * np.exp(-self.space_decay * dists)
        weights = weights / max(weights.sum(), 1e-12)
        context = (states * Tensor(weights[:, None])).sum(axis=0)
        return table @ self.out_proj(context)
