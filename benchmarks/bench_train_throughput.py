"""Training throughput: per-sample vs batched loss path — BENCH_train.

Seeds the BENCH trajectory for the differentiable batched training
path.  Two legs through the same :class:`repro.train.Trainer` on the
same data, seed and budget:

* **per-sample** — ``use_batched=False``: ``loss_sample`` summed over
  the mini-batch (the pre-PR-3 behaviour);
* **batched** — ``use_batched=True``: one padded, fully differentiable
  ``loss_batch`` forward/backward per mini-batch (batched fusion
  attention, packed block-diagonal HGAT, vectorised ArcFace heads).

Both legs warm the model's caches (QR-P graphs, imagery columns) with
one untimed epoch first, so the numbers reflect steady-state epochs
rather than first-touch graph construction, which is identical on both
paths.  A loss-parity check asserts the two paths compute the same
objective (in eval mode — under training, dropout draws its masks in
path-dependent order, like cuDNN vs unbatched kernels in torch).

Alongside the human-readable table the run emits
``benchmarks/results/BENCH_train.json`` — the machine-readable BENCH
trajectory point (samples/sec per leg, batched/per-sample speedup,
loss-parity residual).  Run standalone with
``PYTHONPATH=src python benchmarks/bench_train_throughput.py``
(the CI workflow does exactly that and uploads the JSON artifact).
"""

import json
import time
from pathlib import Path

import pytest

from repro.experiments import format_table, get_profile, prepare, build_model
from repro.train import TrainConfig, Trainer

pytestmark = pytest.mark.slow

RESULTS_DIR = Path(__file__).parent / "results"
BATCH_SIZE = 8  # the paper's training batch size
TRAIN_SAMPLES = 160
MEASURED_EPOCHS = 2


def _train_config(profile, use_batched, epochs):
    return TrainConfig(
        epochs=epochs,
        batch_size=BATCH_SIZE,
        lr=profile.lr,
        max_train_samples=TRAIN_SAMPLES,
        seed=0,
        use_batched=use_batched,
    )


def _measure_leg(data, profile, use_batched):
    """Samples/sec over MEASURED_EPOCHS steady-state epochs."""
    model = build_model("TSPN-RA", data, profile, seed=0)
    Trainer(model, _train_config(profile, use_batched, epochs=1)).fit(
        data.splits.train
    )  # untimed warm-up epoch: builds QR-P graphs / imagery columns
    trainer = Trainer(model, _train_config(profile, use_batched, MEASURED_EPOCHS))
    start = time.perf_counter()
    history = trainer.fit(data.splits.train)
    elapsed = time.perf_counter() - start
    return TRAIN_SAMPLES * MEASURED_EPOCHS / elapsed, history


def _loss_parity(data, profile):
    """Max relative |loss_batch - sum(loss_sample)| over one batch.

    Computed in eval mode: the objective is identical on both paths;
    training-mode dropout would draw different masks per path.
    """
    model = build_model("TSPN-RA", data, profile, seed=0)
    model.eval()
    batch = data.splits.train[:BATCH_SIZE]
    shared = model.compute_embeddings()
    per_sample = sum(
        model.loss_sample(sample, *shared).item() for sample in batch
    )
    batched = model.loss_batch(batch, *model.compute_embeddings()).item()
    return abs(batched - per_sample) / abs(per_sample)


def run_bench(profile=None, save_report=None):
    profile = (profile or get_profile("quick")).smaller(0.5)
    data = prepare("nyc", profile, seed=0)

    parity = _loss_parity(data, profile)
    per_sample_sps, _ = _measure_leg(data, profile, use_batched=False)
    batched_sps, _ = _measure_leg(data, profile, use_batched=True)
    report = {
        "per_sample_sps": per_sample_sps,
        "batched_sps": batched_sps,
        "speedup": batched_sps / per_sample_sps,
        "loss_parity_rel_diff": parity,
    }

    rows = [
        ["per-sample samples/s", f"{per_sample_sps:10.2f}"],
        ["batched samples/s", f"{batched_sps:10.2f}"],
        ["speedup", f"{report['speedup']:10.2f}"],
        ["loss parity rel diff", f"{parity:10.2e}"],
    ]
    table = format_table(
        ["Metric", "Value"],
        rows,
        title=f"Training throughput — per-sample vs batched loss (NYC, batch {BATCH_SIZE})",
    )
    if save_report is not None:
        save_report("train_throughput", table)
    else:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / "train_throughput.txt").write_text(table + "\n")
        print(table)

    RESULTS_DIR.mkdir(exist_ok=True)
    trajectory_point = {
        "bench": "train",
        "dataset": "nyc",
        "batch_size": BATCH_SIZE,
        "train_samples": TRAIN_SAMPLES,
        "measured_epochs": MEASURED_EPOCHS,
        **{key: round(value, 6) for key, value in report.items()},
    }
    out = RESULTS_DIR / "BENCH_train.json"
    out.write_text(json.dumps(trajectory_point, indent=2) + "\n")
    print(f"[BENCH trajectory point saved to {out}]")

    assert parity < 1e-9, report
    assert report["speedup"] > 1.0, report
    return report


def bench_train_throughput(profile, save_report):
    run_bench(profile=profile, save_report=save_report)


if __name__ == "__main__":
    run_bench()
