"""Figure 12 — Florida coastal case study.

Paper shape to reproduce: for a user active on the east coast, the
full TSPN-RA concentrates its top-50 recommendations on the coastal
band; 20% imagery noise pushes them inland; bypassing the tile filter
scatters them; LSTPM follows POI density instead of the coastal
context.
"""

from repro.experiments import format_table
from repro.experiments.figures import run_fig12


def bench_fig12(benchmark, profile, save_report):
    small = profile.smaller(0.8)
    results, metrics = benchmark.pedantic(run_fig12, args=(small,), rounds=1, iterations=1)
    rows = [
        [
            r.model_name,
            f"{r.coastal_fraction:.3f}",
            f"{r.mean_distance_to_target:.1f}",
            "yes" if r.target_in_top50 else "no",
        ]
        for r in results
    ]
    report = format_table(
        ["System", "CoastalFrac@50", "MeanDistToTarget", "TargetInTop50"],
        rows,
        title="Fig. 12 — coastal case study (Florida)",
    )
    save_report("fig12", report)

    by_name = {r.model_name: r for r in results}
    full = by_name["TSPN-RA"]
    # the full model should be at least as coastal as the corrupted variants
    others = [r for name, r in by_name.items() if name != "TSPN-RA"]
    assert full.coastal_fraction >= max(o.coastal_fraction for o in others) - 0.25
