"""TSPN-RA core: the paper's primary contribution."""

from .config import TSPNRAConfig
from .encoders import SpatialEncoder, TemporalEncoder, spatial_encoding
from .fusion import AttentionBlock, FusionModule
from .hgat import HGATEncoder, HGATLayer
from .loss import arcface_loss, combined_loss, cosine_scores
from .model import PredictionResult, TSPNRA
from .poi_embedding import POIEmbedder
from .tile_embedding import ImageTileEmbedder, TableTileEmbedder
from .tilesystem import GridTileSystem, QuadTreeTileSystem
from .two_step import (
    candidate_pois,
    cosine_similarities,
    cosine_similarities_batch,
    rank_by_cosine,
    rank_of_target,
    rank_pois,
    rank_pois_batch,
    rank_tiles,
    rank_tiles_batch,
    select_tiles,
)

__all__ = [
    "AttentionBlock",
    "FusionModule",
    "GridTileSystem",
    "HGATEncoder",
    "HGATLayer",
    "ImageTileEmbedder",
    "POIEmbedder",
    "PredictionResult",
    "QuadTreeTileSystem",
    "SpatialEncoder",
    "TSPNRA",
    "TSPNRAConfig",
    "TableTileEmbedder",
    "TemporalEncoder",
    "arcface_loss",
    "candidate_pois",
    "combined_loss",
    "cosine_scores",
    "cosine_similarities",
    "cosine_similarities_batch",
    "rank_by_cosine",
    "rank_of_target",
    "rank_pois",
    "rank_pois_batch",
    "rank_tiles",
    "rank_tiles_batch",
    "select_tiles",
    "spatial_encoding",
]
